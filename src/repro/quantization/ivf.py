"""IVF-Flat — the classic inverted-file index, as a non-graph baseline.

Sec. 3 groups ANNS methods into tree/hash/quantization/graph families and
argues graphs win the time-accuracy trade-off; IVF-Flat is the standard
representative of the coarse-quantization family (the backbone of FAISS
deployments), so having it in the library lets that claim be measured:
k-means partitions the corpus into ``n_lists`` cells; a query scans the
``n_probe`` cells whose centroids are nearest.

The sweep harness varies ``ef``; IVF's knob is ``n_probe``, so ``ef`` maps
to ``n_probe = clamp(round(ef / k), 1, n_lists)`` — larger beams mean more
cells, preserving the monotone work/recall trade-off the harness expects.
"""

from __future__ import annotations

import numpy as np

from repro.distances import DistanceComputer, Metric, distances_to_query
from repro.graphs.search import SearchResult
from repro.quantization.kmeans import kmeans
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive


class IVFFlat:
    """Inverted-file index with exact in-cell scoring.

    Parameters
    ----------
    n_lists:
        Number of k-means cells.
    """

    def __init__(self, data: np.ndarray, metric: Metric | str,
                 n_lists: int = 32,
                 seed: int | np.random.Generator | None = 0):
        check_positive(n_lists, "n_lists")
        self.dc = DistanceComputer(data, metric)
        self.n_lists = min(n_lists, self.dc.size)
        rng = ensure_rng(seed)
        # Cells are assigned in L2 space over the (normalized for cosine)
        # stored vectors — standard IVF practice for all three metrics.
        centers, assignments = kmeans(self.dc.data, self.n_lists, seed=rng)
        self.centroids = centers.astype(np.float32)
        self.lists: list[np.ndarray] = [
            np.flatnonzero(assignments == j).astype(np.int64)
            for j in range(self.n_lists)
        ]

    @property
    def size(self) -> int:
        return self.dc.size

    def _probe_count(self, k: int, ef: int | None, n_probe: int | None) -> int:
        if n_probe is not None:
            return max(1, min(n_probe, self.n_lists))
        if ef is None:
            return max(1, self.n_lists // 8)
        return max(1, min(int(round(ef / max(k, 1))), self.n_lists))

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               n_probe: int | None = None) -> SearchResult:
        """Scan the ``n_probe`` nearest cells exactly (NDC counted)."""
        check_positive(k, "k")
        q = self.dc.prepare_query(query)
        probes = self._probe_count(k, ef, n_probe)
        # centroid routing cost is real work: count it
        self.dc.ndc += self.n_lists
        cell_d = distances_to_query(self.centroids, q, self.dc.metric)
        chosen = np.argsort(cell_d, kind="stable")[:probes]
        candidates = np.concatenate([self.lists[int(j)] for j in chosen]) \
            if probes else np.empty(0, dtype=np.int64)
        if candidates.size == 0:
            candidates = np.arange(min(k, self.size), dtype=np.int64)
        dists = self.dc.to_query(candidates, q)
        top = np.argsort(dists, kind="stable")[:k]
        return SearchResult(ids=candidates[top],
                            distances=dists[top].astype(np.float64))

    def stats(self) -> dict:
        sizes = np.array([lst.size for lst in self.lists])
        return {
            "n_lists": self.n_lists,
            "min_list": int(sizes.min()),
            "max_list": int(sizes.max()),
            "mean_list": float(sizes.mean()),
        }
