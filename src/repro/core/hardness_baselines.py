"""Query-hardness baselines to compare Escape Hardness against (Sec. 5.2).

The paper validates EH by its correlation with actual query accuracy and
contrasts it with Steiner-hardness (Wang et al. 2024): EH is a fine-grained
*structural* matrix used to guide graph construction, whereas prior measures
give a single difficulty score.  This module implements representative
single-score baselines so the comparison can be made quantitatively:

- :func:`distance_hardness` — distance from the query to its nearest base
  point (the naive "OOD-ness" proxy).
- :func:`epsilon_hardness` — how many base points crowd the (1+ε)-ball of
  the k-th NN distance; the query-difficulty notion behind Li et al. (2020)
  and the ε-hardness family.  More crowding = more near-ties = harder.
- :func:`effort_hardness` — empirical work: the distance computations an
  index spends to reach a target recall for this query (a Steiner-hardness-
  style effort estimate, measured rather than predicted).
- :func:`eh_hardness` — the paper's Escape Hardness summarized per query
  (mean of the EH matrix, inf clipped).
"""

from __future__ import annotations

import numpy as np

from repro.core.escape_hardness import escape_hardness
from repro.distances import pairwise_distances
from repro.evalx.ground_truth import GroundTruth
from repro.utils.validation import check_matrix, check_positive


def distance_hardness(gt: GroundTruth) -> np.ndarray:
    """Per-query distance to the exact nearest neighbor (larger = harder)."""
    return np.asarray(gt.distances[:, 0], dtype=np.float64)


def epsilon_hardness(base: np.ndarray, queries: np.ndarray, gt: GroundTruth,
                     k: int, eps: float = 0.2) -> np.ndarray:
    """Number of base points within (1+eps) of the k-th NN distance, over k.

    A value near 1 means the top-k stands clear of the rest; large values
    mean a crowded frontier where greedy search must disambiguate many
    near-ties.
    """
    check_positive(eps, "eps")
    base = check_matrix(base, "base")
    queries = check_matrix(queries, "queries")
    if k > gt.ids.shape[1]:
        raise ValueError(f"k={k} exceeds stored ground truth {gt.ids.shape[1]}")
    d = pairwise_distances(queries, base, gt.metric)
    kth = gt.distances[:, k - 1]
    # distances may be negative (inner product); widen the threshold by a
    # magnitude-scaled margin in that case.
    margin = np.abs(kth) * eps + 1e-12
    counts = (d <= (kth + margin)[:, None]).sum(axis=1)
    return counts.astype(np.float64) / k


def effort_hardness(index, queries: np.ndarray, gt: GroundTruth, k: int,
                    target_recall: float = 0.9,
                    ef_grid: list[int] | None = None) -> np.ndarray:
    """NDC spent to reach the target recall per query (inf if never).

    This is the *measured* analogue of Steiner-hardness: the minimum-effort
    notion evaluated empirically on the given index.
    """
    queries = check_matrix(queries, "queries")
    if ef_grid is None:
        ef_grid = [k, 2 * k, 4 * k, 8 * k, 16 * k, 32 * k]
    gt_k = gt.top(k)
    out = np.full(queries.shape[0], np.inf)
    for i, query in enumerate(queries):
        truth = set(gt_k.ids[i].tolist())
        for ef in ef_grid:
            index.dc.reset_ndc()
            result = index.search(query, k=k, ef=ef)
            ndc = index.dc.reset_ndc()
            recall = len(set(result.ids.tolist()) & truth) / k
            if recall >= target_recall:
                out[i] = ndc
                break
    return out


def eh_hardness(index, gt: GroundTruth, k: int,
                hard_ratio: float = 3.0) -> np.ndarray:
    """Escape Hardness summarized to one score per query (paper metric)."""
    K_max = int(np.ceil(hard_ratio * k))
    if K_max > gt.ids.shape[1]:
        raise ValueError(
            f"ground truth holds {gt.ids.shape[1]} columns < K_max={K_max}")
    out = np.empty(gt.n_queries)
    for i in range(gt.n_queries):
        eh = escape_hardness(index.adjacency.neighbors, gt.ids[i][:K_max], k)
        out[i] = eh.hardness_score()
    return out


def hardness_correlations(index, base: np.ndarray, queries: np.ndarray,
                          gt: GroundTruth, k: int, ef: int) -> dict:
    """Spearman-style correlation of each hardness measure with recall.

    Returns ``{measure: correlation}`` where correlation is the Pearson
    coefficient between the measure's *ranks* and per-query recall ranks
    (rank correlation is scale-free, appropriate for heterogeneous
    measures).  Recall is measured on ``index`` at the given ef; good
    hardness measures correlate negatively.
    """
    from repro.evalx.metrics import recall_per_query

    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    recalls = recall_per_query(found, gt.top(k).ids)

    measures = {
        "distance": distance_hardness(gt),
        "epsilon": epsilon_hardness(base, queries, gt, k),
        "effort": effort_hardness(index, queries, gt, k),
        "escape_hardness": eh_hardness(index, gt, k),
    }

    def rank(x):
        x = np.where(np.isinf(x), np.nanmax(np.where(np.isinf(x), np.nan, x)) * 2
                     if np.isfinite(x).any() else 1.0, x)
        return np.argsort(np.argsort(x)).astype(np.float64)

    r_recall = rank(recalls)
    out = {}
    for name, values in measures.items():
        rv = rank(values)
        if np.std(rv) < 1e-12 or np.std(r_recall) < 1e-12:
            out[name] = float("nan")
        else:
            out[name] = float(np.corrcoef(rv, r_recall)[0, 1])
    return out
