"""The k-Neighboring Graph (QNG) of a query — Definition 1 of the paper.

``QNG_k(q)`` is the subgraph a graph index induces on the query's top-k
nearest base points.  The paper's Section 4 analysis ties search accuracy to
this subgraph's connectivity (Theorem 2: reachability inside QNG_k bounds the
search list size needed to visit a point), and Figure 4 measures it by the
average number of points reachable from a random start inside the QNG.
"""

from __future__ import annotations

from collections import deque

import numpy as np


def build_qng(neighbors_fn, nn_ids: np.ndarray) -> list[list[int]]:
    """Induce the neighborhood subgraph on ``nn_ids``.

    Parameters
    ----------
    neighbors_fn:
        ``global_id -> np.ndarray`` of out-neighbors in the full index.
    nn_ids:
        The query's nearest neighbors, ascending by distance; defines the
        local rank order.

    Returns the local adjacency: ``out[i]`` lists local ranks ``j`` with a
    graph edge from the (i+1)-th NN to the (j+1)-th NN.
    """
    nn_ids = np.asarray(nn_ids, dtype=np.int64)
    local = {int(g): r for r, g in enumerate(nn_ids)}
    if len(local) != len(nn_ids):
        raise ValueError("nn_ids contains duplicates")
    out: list[list[int]] = []
    for g in nn_ids:
        row = []
        for v in neighbors_fn(int(g)):
            r = local.get(int(v))
            if r is not None:
                row.append(r)
        out.append(row)
    return out


def qng_edge_count(local_adj: list[list[int]]) -> int:
    """Number of directed edges inside the QNG."""
    return sum(len(row) for row in local_adj)


def _reach_count(local_adj: list[list[int]], start: int) -> int:
    seen = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in local_adj[u]:
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen)


def average_reachable(local_adj: list[list[int]]) -> float:
    """Mean number of QNG points reachable from each start (Fig. 4 metric).

    The paper samples random starts; with the tiny subgraphs involved the
    exact average over all starts is cheap and noise-free.
    """
    n = len(local_adj)
    if n == 0:
        raise ValueError("empty QNG")
    return sum(_reach_count(local_adj, s) for s in range(n)) / n


def isolated_points(local_adj: list[list[int]]) -> int:
    """Count QNG nodes with neither in- nor out-edges (Fig. 3 visual)."""
    n = len(local_adj)
    has_edge = [bool(row) for row in local_adj]
    for row in local_adj:
        for v in row:
            has_edge[v] = True
    return sum(1 for flag in has_edge if not flag)


def qng_connectivity_report(neighbors_fn, nn_ids: np.ndarray) -> dict:
    """Connectivity summary of one query's QNG."""
    adj = build_qng(neighbors_fn, nn_ids)
    n = len(adj)
    return {
        "k": n,
        "n_edges": qng_edge_count(adj),
        "avg_reachable": average_reachable(adj),
        "reachable_fraction": average_reachable(adj) / n,
        "isolated_points": isolated_points(adj),
    }
