"""QNG visualization via classical multidimensional scaling (paper Fig. 3).

The paper projects a query's neighborhood to 2-D with MDS (Torgerson 1952)
to show that low-recall queries have fragmented, isolated-point QNGs.  This
module implements classical MDS from scratch (double-centering + top
eigenvectors) plus a dependency-free ASCII renderer so the figure can be
reproduced in a terminal.
"""

from __future__ import annotations

import numpy as np

from repro.core.qng import build_qng
from repro.distances import pairwise_distances
from repro.evalx.ground_truth import GroundTruth


def classical_mds(sq_distances: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Torgerson's classical MDS on a squared-distance matrix.

    Double-centers ``-D/2`` into a Gram matrix and embeds with its top
    eigenvectors.  Negative eigenvalues (non-Euclidean inputs) are clamped.
    """
    d = np.asarray(sq_distances, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"expected square distance matrix, got {d.shape}")
    n = d.shape[0]
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
    centering = np.eye(n) - np.full((n, n), 1.0 / n)
    gram = -0.5 * centering @ d @ centering
    eigvals, eigvecs = np.linalg.eigh(gram)
    order = np.argsort(eigvals)[::-1][:n_components]
    scales = np.sqrt(np.maximum(eigvals[order], 0.0))
    return eigvecs[:, order] * scales


def qng_layout(index, nn_ids: np.ndarray) -> dict:
    """2-D MDS layout of a query's QNG plus its edge list.

    Returns ``{"coords": (k, 2), "edges": [(i, j), ...]}`` in local ranks.
    For COSINE/IP metrics the comparison distances are shifted to be
    non-negative before MDS (MDS needs dissimilarities).
    """
    nn_ids = np.asarray(nn_ids, dtype=np.int64)
    vectors = index.dc.data[nn_ids]
    d = pairwise_distances(vectors, vectors, index.metric)
    d = d - d.min()
    np.fill_diagonal(d, 0.0)
    coords = classical_mds(d, 2)
    local = build_qng(index.adjacency.neighbors, nn_ids)
    edges = [(u, v) for u, row in enumerate(local) for v in row]
    return {"coords": coords, "edges": edges}


def ascii_scatter(coords: np.ndarray, edges=None, width: int = 48,
                  height: int = 18, labels: str = "0123456789") -> str:
    """Render 2-D points (and optionally edges) as an ASCII grid.

    Points are drawn as their rank digit (wrapping through ``labels``);
    edge paths are drawn with ``.`` by linear interpolation.  Intended for
    terminal demos and doctests, not publication plots.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coords, got {coords.shape}")
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)

    def cell(point):
        x = int((point[0] - lo[0]) / span[0] * (width - 1))
        y = int((point[1] - lo[1]) / span[1] * (height - 1))
        return y, x

    grid = [[" "] * width for _ in range(height)]
    for u, v in edges or []:
        a, b = coords[u], coords[v]
        for t in np.linspace(0, 1, 2 * max(width, height)):
            y, x = cell(a + t * (b - a))
            if grid[y][x] == " ":
                grid[y][x] = "."
    for i, point in enumerate(coords):
        y, x = cell(point)
        grid[y][x] = labels[i % len(labels)]
    return "\n".join("".join(row) for row in grid)


def render_qng(index, gt: GroundTruth, query_index: int, k: int,
               width: int = 48, height: int = 18) -> str:
    """One-call Fig.-3-style ASCII rendering of a query's QNG."""
    layout = qng_layout(index, gt.ids[query_index][:k])
    return ascii_scatter(layout["coords"], layout["edges"], width, height)
