"""Hash-table answer cache for exactly repeated queries (Sec. 7).

When test queries overlap historical ones, hashing the query bytes and
returning the stored ground truth short-circuits graph search (the paper
measures ~9% of graph-search latency on MainSearch).  The cache cannot
generalize to unseen queries and costs memory per stored answer — both
trade-offs the paper calls out — so :class:`CachedSearcher` composes it with
a graph index: hit → cached answer, miss → ANNS.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.graphs.search import SearchResult


def _query_key(query: np.ndarray, algorithm: str) -> bytes:
    digest = hashlib.new(algorithm)
    digest.update(np.ascontiguousarray(query, dtype=np.float32).tobytes())
    return digest.digest()


class HashTableCache:
    """Exact-match query -> top-k answer store keyed by a byte-level hash."""

    def __init__(self, algorithm: str = "md5"):
        if algorithm not in hashlib.algorithms_available:
            raise ValueError(f"unknown hash algorithm {algorithm!r}")
        self.algorithm = algorithm
        self._store: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def put(self, query: np.ndarray, ids: np.ndarray, distances: np.ndarray) -> None:
        """Store a query's answer (overwrites a prior entry)."""
        ids = np.asarray(ids, dtype=np.int64)
        distances = np.asarray(distances, dtype=np.float64)
        if ids.shape != distances.shape:
            raise ValueError("ids and distances must align")
        self._store[_query_key(query, self.algorithm)] = (ids, distances)

    def get(self, query: np.ndarray, k: int) -> SearchResult | None:
        """Cached answer if present *and* covering k results, else None."""
        entry = self._store.get(_query_key(query, self.algorithm))
        if entry is None or entry[0].shape[0] < k:
            self.misses += 1
            return None
        self.hits += 1
        return SearchResult(ids=entry[0][:k].copy(), distances=entry[1][:k].copy())

    def drop_if_contains(self, deleted) -> int:
        """Remove every cached answer containing any of the ``deleted`` ids.

        Deletion invalidation: a stored answer that references a deleted
        point is stale in a way graph search would never be (tombstones are
        filtered from live results), so the whole entry is evicted and the
        next lookup falls through to the index.  Returns the number of
        entries dropped.
        """
        if np.isscalar(deleted):
            deleted = (deleted,)
        deleted = {int(i) for i in deleted}
        if not deleted:
            return 0
        stale = [key for key, (ids, _) in self._store.items()
                 if not deleted.isdisjoint(ids.tolist())]
        for key in stale:
            del self._store[key]
        return len(stale)

    def memory_bytes(self) -> int:
        """Approximate store footprint (keys + int64 ids + float64 dists)."""
        digest_len = hashlib.new(self.algorithm).digest_size
        return sum(digest_len + ids.nbytes + d.nbytes
                   for ids, d in self._store.values())


class CachedSearcher:
    """Hash-table cache in front of any index (hit → stored ground truth)."""

    def __init__(self, index, cache: HashTableCache | None = None):
        self.index = index
        self.cache = cache or HashTableCache()

    @property
    def dc(self):
        return self.index.dc

    def warm(self, queries: np.ndarray, ids: np.ndarray, distances: np.ndarray) -> None:
        """Preload answers (e.g. historical queries with their ground truth)."""
        for i, query in enumerate(np.atleast_2d(queries)):
            self.cache.put(query, ids[i], distances[i])

    def invalidate(self, ids) -> int:
        """Drop cached answers referencing ``ids`` (call on deletion)."""
        return self.cache.drop_if_contains(ids)

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchResult:
        hit = self.cache.get(query, k)
        if hit is not None:
            tombstones = getattr(getattr(self.index, "adjacency", None),
                                 "tombstones", None)
            if tombstones and not tombstones.isdisjoint(hit.ids.tolist()):
                # A deletion bypassed invalidate(); purge all stale entries
                # and treat this lookup as a miss.
                self.cache.drop_if_contains(tombstones)
                self.cache.hits -= 1
                self.cache.misses += 1
            else:
                return hit
        return self.index.search(query, k=k, ef=ef)
