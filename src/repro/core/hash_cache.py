"""Hash-table answer cache for exactly repeated queries (Sec. 7).

When test queries overlap historical ones, hashing the query bytes and
returning the stored ground truth short-circuits graph search (the paper
measures ~9% of graph-search latency on MainSearch).  The cache cannot
generalize to unseen queries and costs memory per stored answer — both
trade-offs the paper calls out — so :class:`CachedSearcher` composes it with
a graph index: hit → cached answer, miss → ANNS.  Batched searches partition
the block into hits and misses and run the engine only on the misses, so the
cache composes with the throughput-optimal path too.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.graphs.search import SearchResult
from repro.obs import OBS, TRACES, QueryTrace

_CACHE_HITS = OBS.counter(
    "cache_hits", "hash-cache lookups answered from the store")
_CACHE_MISSES = OBS.counter(
    "cache_misses", "hash-cache lookups that fell through to the index")


def _query_key(query: np.ndarray, algorithm: str) -> bytes:
    digest = hashlib.new(algorithm)
    digest.update(np.ascontiguousarray(query, dtype=np.float32).tobytes())
    return digest.digest()


class HashTableCache:
    """Exact-match query -> top-k answer store keyed by a byte-level hash."""

    def __init__(self, algorithm: str = "md5"):
        if algorithm not in hashlib.algorithms_available:
            raise ValueError(f"unknown hash algorithm {algorithm!r}")
        self.algorithm = algorithm
        self._store: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        # Callback gauges track the most recently constructed cache (tests
        # and services alike build one long-lived instance).
        OBS.gauge_fn("cache_entries", lambda: len(self._store),
                     "answers stored in the hash cache")
        OBS.gauge_fn("cache_memory_bytes", self.memory_bytes,
                     "approximate hash-cache footprint in bytes")
        OBS.gauge_fn("cache_hit_ratio", self.hit_ratio,
                     "fraction of hash-cache lookups that hit")

    def __len__(self) -> int:
        return len(self._store)

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def put(self, query: np.ndarray, ids: np.ndarray, distances: np.ndarray) -> None:
        """Store a query's answer (overwrites a prior entry).

        The arrays are always copied: ``np.asarray`` would alias the
        caller's buffers whenever the dtypes already match, and a caller
        mutating its ids/distances in place afterwards would silently
        corrupt the cached answer (``get`` copies on the way out for the
        same reason).
        """
        ids = np.array(ids, dtype=np.int64, copy=True)
        distances = np.array(distances, dtype=np.float64, copy=True)
        if ids.shape != distances.shape:
            raise ValueError("ids and distances must align")
        self._store[_query_key(query, self.algorithm)] = (ids, distances)

    def get(self, query: np.ndarray, k: int) -> SearchResult | None:
        """Cached answer if present *and* covering k results, else None."""
        entry = self._store.get(_query_key(query, self.algorithm))
        if entry is None or entry[0].shape[0] < k:
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        self.hits += 1
        _CACHE_HITS.inc()
        return SearchResult(ids=entry[0][:k].copy(), distances=entry[1][:k].copy())

    def drop_if_contains(self, deleted) -> int:
        """Remove every cached answer containing any of the ``deleted`` ids.

        Deletion invalidation: a stored answer that references a deleted
        point is stale in a way graph search would never be (tombstones are
        filtered from live results), so the whole entry is evicted and the
        next lookup falls through to the index.  Returns the number of
        entries dropped.
        """
        if np.isscalar(deleted):
            deleted = (deleted,)
        deleted = {int(i) for i in deleted}
        if not deleted:
            return 0
        stale = [key for key, (ids, _) in self._store.items()
                 if not deleted.isdisjoint(ids.tolist())]
        for key in stale:
            del self._store[key]
        return len(stale)

    def memory_bytes(self) -> int:
        """Approximate store footprint (keys + int64 ids + float64 dists)."""
        digest_len = hashlib.new(self.algorithm).digest_size
        return sum(digest_len + ids.nbytes + d.nbytes
                   for ids, d in self._store.values())


class CachedSearcher:
    """Hash-table cache in front of any index (hit → stored ground truth)."""

    def __init__(self, index, cache: HashTableCache | None = None):
        self.index = index
        self.cache = cache or HashTableCache()

    @property
    def dc(self):
        return self.index.dc

    def warm(self, queries: np.ndarray, ids: np.ndarray, distances: np.ndarray) -> None:
        """Preload answers (e.g. historical queries with their ground truth)."""
        for i, query in enumerate(np.atleast_2d(queries)):
            self.cache.put(query, ids[i], distances[i])

    def invalidate(self, ids) -> int:
        """Drop cached answers referencing ``ids`` (call on deletion)."""
        return self.cache.drop_if_contains(ids)

    def _cached(self, query: np.ndarray, k: int) -> SearchResult | None:
        """Cache lookup with the tombstone-staleness guard applied."""
        hit = self.cache.get(query, k)
        if hit is None:
            return None
        tombstones = getattr(getattr(self.index, "adjacency", None),
                             "tombstones", None)
        if tombstones and not tombstones.isdisjoint(hit.ids.tolist()):
            # A deletion bypassed invalidate(); purge all stale entries
            # and treat this lookup as a miss.
            self.cache.drop_if_contains(tombstones)
            self.cache.hits -= 1
            self.cache.misses += 1
            return None
        if OBS.enabled:
            TRACES.record(QueryTrace(k=k, cache_hit=True))
        return hit

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchResult:
        hit = self._cached(query, k)
        if hit is not None:
            return hit
        return self.index.search(query, k=k, ef=ef)

    def search_batch(self, queries: np.ndarray, k: int,
                     ef: int | None = None,
                     batch_size: int = 32) -> list[SearchResult]:
        """Batched search: cached hits answer instantly, only misses run.

        The block is partitioned into cache hits and misses; the misses go
        through the underlying index's batch engine in one call (falling
        back to its sequential ``search`` when it has no batched path), and
        the results are re-interleaved in query order.  Results are
        identical to calling :meth:`search` per query.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        results: list[SearchResult | None] = [None] * queries.shape[0]
        miss_rows: list[int] = []
        for i, query in enumerate(queries):
            hit = self._cached(query, k)
            if hit is not None:
                results[i] = hit
            else:
                miss_rows.append(i)
        if miss_rows:
            batch_fn = getattr(self.index, "search_batch", None)
            if batch_fn is not None:
                missed = batch_fn(queries[miss_rows], k, ef,
                                  batch_size=batch_size)
            else:
                missed = [self.index.search(queries[i], k=k, ef=ef)
                          for i in miss_rows]
            for i, result in zip(miss_rows, missed):
                results[i] = result
        return results  # type: ignore[return-value]

    def search_many(self, queries: np.ndarray, k: int, ef: int | None = None,
                    batch_size: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Batched search returning padded (ids, distances) arrays."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        for i, result in enumerate(self.search_batch(queries, k, ef,
                                                     batch_size=batch_size)):
            m = min(k, len(result.ids))
            ids[i, :m] = result.ids[:m]
            distances[i, :m] = result.distances[:m]
        return ids, distances
