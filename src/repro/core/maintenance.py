"""Index maintenance: insertion and deletion (Sec. 5.5).

Insertion (5.5.1): new points enter via the base graph's own insertion
algorithm (HNSW here).  After many insertions the NGFix extra edges no
longer serve the new points, so a **partial rebuild** drops a random
proportion of extra edges, resets the surviving EH tags, and re-runs
NGFix*/RFix on a sample of the historical queries — recovering most of a
full rebuild's quality at a fraction of its cost (Fig. 18).

Deletion (5.5.2): tombstone (lazy) deletion first — deleted points still
navigate but never appear in results.  Once tombstones exceed a threshold
fraction of the corpus, a compaction pass physically strips deleted points
and their incoming edges, then repairs the damaged neighborhoods by running
NGFix with each *deleted point treated as a query* (its former neighborhood
is exactly a region whose connectivity the deletion broke) — matching full
reconstruction quality at ~7% of its cost (Fig. 19).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.escape_hardness import escape_hardness
from repro.core.fixer import NGFixer
from repro.core.ngfix import ngfix_query
from repro.distances import pairwise_distances
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_fraction, check_matrix


class IndexMaintainer:
    """Insert/delete lifecycle manager around an :class:`NGFixer`.

    Parameters
    ----------
    fixer:
        The fixed index to maintain; its base index must support ``insert``
        for insertion maintenance (HNSW does).
    history:
        Historical queries available for partial rebuilds.
    compact_threshold:
        Tombstone fraction that triggers physical compaction (the paper
        suggests ~1%; the default is scaled up for small corpora).
    cache:
        Optional answer cache to invalidate on deletion — a
        :class:`~repro.core.hash_cache.CachedSearcher` (``invalidate``) or
        bare :class:`~repro.core.hash_cache.HashTableCache`
        (``drop_if_contains``); cached answers referencing deleted points
        are evicted the moment the points are tombstoned.
    on_change:
        Optional nullary callback fired after every mutating operation
        (insert, delete, compaction, partial rebuild).  The serving layer's
        :class:`~repro.serving.MaintenanceScheduler` hooks this to decide
        when the accumulated delta overlay is worth merging into a fresh
        epoch.
    """

    def __init__(self, fixer: NGFixer, history: np.ndarray,
                 compact_threshold: float = 0.05,
                 seed: int | np.random.Generator | None = 0,
                 cache=None, on_change=None):
        check_fraction(compact_threshold, "compact_threshold")
        self.fixer = fixer
        self.cache = cache
        self.on_change = on_change
        history = np.asarray(history, dtype=np.float32)
        # An empty history is legal (no partial rebuilds possible, insert/
        # delete maintenance still works).
        self.history = (history if history.size == 0
                        else check_matrix(history, "history"))
        self.compact_threshold = compact_threshold
        self._rng = ensure_rng(seed)
        self.last_compaction_seconds = 0.0
        self.last_rebuild_seconds = 0.0

    # -- insertion ------------------------------------------------------------

    def insert(self, vectors: np.ndarray) -> list[int]:
        """Insert vectors through the base graph's insertion algorithm."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if not hasattr(self.fixer.index, "insert"):
            raise TypeError(
                f"base index {type(self.fixer.index).__name__} does not "
                "support incremental insertion")
        ids = [self.fixer.index.insert(v) for v in vectors]
        # The medoid drifts as data grows; recompute the fixed entry.  A
        # compacted row can win the medoid computation (its vector is still
        # in the data matrix) but its node is edgeless — keep the current
        # entry in that case.
        entry = self.fixer.index.medoid()
        if entry not in self.fixer.adjacency.removed:
            self.fixer.entry = entry
        self._notify()
        return ids

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def partial_rebuild(self, proportion: float, drop_fraction: float = 0.2) -> dict:
        """Partial rebuild with history sample ``proportion`` (Sec. 5.5.1).

        Step 1: randomly drop ``drop_fraction`` of extra edges and reset the
        EH of survivors (stale hardness no longer reflects the graph).
        Step 2: re-run NGFix*/RFix on ``proportion`` of the history.
        Returns timing and edge accounting.
        """
        check_fraction(proportion, "proportion")
        check_fraction(drop_fraction, "drop_fraction")
        start = time.perf_counter()
        dropped = self.fixer.adjacency.drop_extra_fraction(drop_fraction, self._rng)
        n_sample = int(round(proportion * len(self.history)))
        if n_sample:
            picks = self._rng.choice(len(self.history), size=n_sample, replace=False)
            self.fixer.fit(self.history[picks])
        self.last_rebuild_seconds = time.perf_counter() - start
        self._notify()
        return {
            "dropped_extra_edges": dropped,
            "history_used": n_sample,
            "seconds": self.last_rebuild_seconds,
        }

    # -- deletion -------------------------------------------------------------

    def delete(self, ids) -> bool:
        """Lazily delete points; compacts when the threshold trips.

        Returns True if a compaction ran.
        """
        tombstones = self.fixer.adjacency.tombstones
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        for i in ids:
            i = int(i)
            if not 0 <= i < self.fixer.dc.size:
                raise IndexError(f"id {i} out of range [0, {self.fixer.dc.size})")
            tombstones.add(i)
        if self.cache is not None:
            drop = getattr(self.cache, "invalidate", None)
            if drop is None:
                drop = self.cache.drop_if_contains
            drop(ids)
        if len(tombstones) > self.compact_threshold * self.fixer.dc.size:
            self.compact()
            return True
        self._notify()
        return False

    def compact(self, repair: bool = True, repair_k: int | None = None) -> dict:
        """Physically remove tombstoned points; optionally repair via NGFix.

        Repair treats each deleted point as a query: compute its top-k
        remaining neighbors, measure EH, and let NGFix reconnect the region
        (Sec. 5.5.2, second challenge).  ``repair_k`` controls the repaired
        neighborhood size; the paper uses a large one for deletions (its
        deletion experiments search with ef=800), so the default is twice the
        fixer's k.
        """
        start = time.perf_counter()
        deleted = set(self.fixer.adjacency.tombstones)
        if not deleted:
            return {"deleted": 0, "seconds": 0.0}
        self.fixer.adjacency.remove_node_edges(deleted)

        repaired = 0
        if repair:
            config = self.fixer.config
            k = repair_k if repair_k is not None else 2 * config.k
            K_max = config.k_max(k)
            deleted_arr = np.fromiter(deleted, dtype=np.int64)
            alive_mask = np.ones(self.fixer.dc.size, dtype=bool)
            # Mask every compacted id ever (remove_node_edges above folded
            # this round into adjacency.removed): repair must not target
            # rows whose nodes were stripped in an earlier compaction.
            gone = self.fixer.adjacency.removed
            alive_mask[np.fromiter(gone, dtype=np.int64, count=len(gone))] = False
            alive = np.flatnonzero(alive_mask)
            # Exact neighborhoods of the deleted points among survivors.
            dists = pairwise_distances(
                self.fixer.dc.data[deleted_arr], self.fixer.dc.data[alive],
                self.fixer.dc.metric)
            for row in dists:
                order = np.argsort(row, kind="stable")[:K_max]
                nn_ids = alive[order]
                eh = escape_hardness(self.fixer.adjacency.neighbors, nn_ids, k)
                ngfix_query(
                    self.fixer.adjacency, self.fixer.dc, eh,
                    eh_threshold=config.eh_threshold,
                    max_extra_degree=config.max_extra_degree,
                    evict_strategy=config.evict_strategy,
                    rng=self._rng,
                )
                repaired += 1

        self.fixer.adjacency.tombstones.clear()
        # Accumulate across compactions: ids are never reused, so every
        # compacted id stays dead for the store's whole lifetime.
        self._deleted_ids = getattr(self, "_deleted_ids", set()) | deleted
        # Entry point may have been deleted; move it to a surviving node
        # (adjacency.removed covers this round and every earlier one).
        if self.fixer.entry in deleted:
            gone = self.fixer.adjacency.removed
            self.fixer.entry = next(
                i for i in range(self.fixer.dc.size) if i not in gone)
        self.last_compaction_seconds = time.perf_counter() - start
        self._notify()
        return {
            "deleted": len(deleted),
            "repaired_regions": repaired,
            "seconds": self.last_compaction_seconds,
        }
