"""Online adaptation to workload drift (paper Sec. 7, "Selection strategy
for historical queries").

Under a stable workload NGFix* self-regulates: easy queries add no edges,
hard ones add many, so feeding every query is fine.  Under *drift* the
per-node extra-degree budgets fill with edges serving the old workload, and
new queries cannot claim capacity.  The paper's remedy, implemented here:

- keep fixing incoming queries online;
- **periodically delete a random subset of existing extra edges** (e.g.
  20%) to free budget, then **prioritize the newest queries** (by arrival
  order) when re-fixing.

:class:`WorkloadAdapter` wraps an :class:`~repro.core.fixer.NGFixer` and
applies this policy over an arriving query stream.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.core.fixer import NGFixer
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_fraction, check_positive


class WorkloadAdapter:
    """Streaming policy: fix-as-you-serve with periodic edge refresh.

    Parameters
    ----------
    fixer:
        The NGFix* index to adapt (fixed in place).
    refresh_interval:
        After this many observed queries, run a refresh cycle.
    refresh_drop_fraction:
        Fraction of extra edges randomly dropped at each refresh (frees
        degree budget for the new workload).
    window:
        How many of the most recent queries are replayed after a refresh
        (newest-first priority).
    fix_every:
        Only every ``fix_every``-th observed query is fixed online (sampling
        keeps serving latency bounded; 1 = fix everything).
    """

    def __init__(
        self,
        fixer: NGFixer,
        refresh_interval: int = 200,
        refresh_drop_fraction: float = 0.2,
        window: int = 100,
        fix_every: int = 1,
        seed: int | np.random.Generator | None = 0,
    ):
        check_positive(refresh_interval, "refresh_interval")
        check_fraction(refresh_drop_fraction, "refresh_drop_fraction")
        check_positive(window, "window")
        check_positive(fix_every, "fix_every")
        self.fixer = fixer
        self.refresh_interval = refresh_interval
        self.refresh_drop_fraction = refresh_drop_fraction
        self.window = window
        self.fix_every = fix_every
        self._rng = ensure_rng(seed)
        self._recent: collections.deque[np.ndarray] = collections.deque(maxlen=window)
        self.observed = 0
        self.refreshes = 0

    def observe(self, query: np.ndarray) -> None:
        """Register one served query; fix it (sampled) and maybe refresh."""
        query = np.asarray(query, dtype=np.float32)
        self._recent.append(query)
        self.observed += 1
        if self.observed % self.fix_every == 0:
            self.fixer.fix_query(query)
        if self.observed % self.refresh_interval == 0:
            self.refresh()

    def observe_batch(self, queries: np.ndarray) -> None:
        """Observe a batch in arrival order."""
        for query in np.atleast_2d(np.asarray(queries, dtype=np.float32)):
            self.observe(query)

    def refresh(self) -> dict:
        """One refresh cycle: drop stale extra edges, replay newest queries.

        Returns a report of the dropped edge count and replayed queries.
        """
        dropped = self.fixer.adjacency.drop_extra_fraction(
            self.refresh_drop_fraction, self._rng)
        replayed = 0
        # Newest first: they get first claim on the freed degree budget.
        for query in reversed(self._recent):
            self.fixer.fix_query(query)
            replayed += 1
        self.refreshes += 1
        return {"dropped_extra_edges": dropped, "replayed": replayed}

    def search(self, query: np.ndarray, k: int, ef: int | None = None):
        """Serve a query (search only; call :meth:`observe` to also adapt)."""
        return self.fixer.search(query, k=k, ef=ef)

    @property
    def dc(self):
        return self.fixer.dc
