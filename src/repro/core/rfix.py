"""RFix — Reachability Fixing (Sec. 5.4, Algorithm 4).

NGFix assumes greedy search reaches the query's vicinity (phase 2).  For the
minority of historical queries where it does not, the search stalls at some
point ``p̂`` (the approximate NN it returned) that lacks outgoing edges
toward the query: index builders pick link candidates from a small greedy
result set, which can cluster in one direction and miss whole regions.

RFix expands ``p̂``'s candidate neighbor set with every point closer to the
query than ``p̂`` (gathered by a wider greedy search instead of brute force),
applies the RNG angle rule so the new edges spread across directions, and
installs them with an *infinite* EH tag so the NGFix eviction never removes
these navigation-critical edges.  The fix is repeated until the search
reaches the vicinity or the degree budget is exhausted.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distances import DistanceComputer
from repro.graphs.adjacency import AdjacencyStore, EH_INFINITE
from repro.graphs.pruning import rng_prune
from repro.graphs.search import VisitedTable, greedy_search


@dataclasses.dataclass
class RFixOutcome:
    """Result of RFix for one query."""

    edges_added: list[tuple[int, int]]
    rounds: int
    reached_vicinity: bool
    needed_fix: bool


def search_reaches_vicinity(found_distance: float, kth_nn_distance: float,
                            tolerance: float = 1e-9) -> bool:
    """The paper's phase-2 criterion: the found NN is at least as close as
    the true k-th NN, i.e. the search arrived inside the query's top-k ball."""
    return found_distance <= kth_nn_distance + tolerance


def rfix_query(
    adjacency: AdjacencyStore,
    dc: DistanceComputer,
    query: np.ndarray,
    nn_ids: np.ndarray,
    nn_distances: np.ndarray,
    entry_point: int,
    search_ef: int,
    expand_ef: int | None = None,
    max_extra_degree: int = 12,
    max_rounds: int = 5,
    visited: VisitedTable | None = None,
) -> RFixOutcome:
    """Run Algorithm 4 for one historical query.

    Parameters
    ----------
    query:
        The historical query vector.
    nn_ids, nn_distances:
        The query's (exact or approximate) top-k neighbor ids and distances
        from preprocessing; the k-th distance defines "vicinity".
    entry_point:
        Fixed entry (the base-data medoid, per the paper).
    search_ef:
        Search list size whose success RFix must guarantee.
    expand_ef:
        Wider beam used to collect the extended candidate set (defaults to
        ``4 * search_ef``).
    """
    nn_ids = np.asarray(nn_ids, dtype=np.int64)
    k = nn_ids.shape[0]
    kth_distance = float(np.asarray(nn_distances)[k - 1])
    if expand_ef is None:
        expand_ef = 4 * search_ef
    q = dc.prepare_query(query)
    added: list[tuple[int, int]] = []

    rounds = 0
    needed = False
    while rounds < max_rounds:
        probe = greedy_search(dc, adjacency.neighbors, [entry_point], q,
                              k=1, ef=search_ef, visited=visited, prepared=True)
        anchor = int(probe.ids[0])
        anchor_distance = float(probe.distances[0])
        if search_reaches_vicinity(anchor_distance, kth_distance):
            return RFixOutcome(added, rounds, True, needed)
        needed = True
        rounds += 1

        # Extended candidate set: every point strictly closer to the query
        # than the anchor, gathered by a wider beam (the brute-force
        # replacement described in the paper) plus the known NNs themselves.
        wide = greedy_search(dc, adjacency.neighbors, [entry_point], q,
                             k=expand_ef, ef=expand_ef, visited=visited,
                             collect_visited=True, prepared=True)
        closer = wide.visited_ids[wide.visited_distances < anchor_distance]
        pool = np.unique(np.concatenate([closer, nn_ids]))
        pool = pool[pool != anchor]
        if pool.size == 0:
            break

        budget = max_extra_degree - adjacency.extra_degree(anchor)
        if budget <= 0:
            break
        # RNG rule keeps the new edges >60 degrees apart, dispersing them in
        # different directions (Algorithm 4 lines 5-9).
        selected = rng_prune(dc, anchor, pool, budget)
        new_this_round = 0
        for v in selected:
            if adjacency.add_extra_edge(anchor, v, EH_INFINITE):
                added.append((anchor, v))
                new_this_round += 1
        if new_this_round == 0:
            break

    probe = greedy_search(dc, adjacency.neighbors, [entry_point], q,
                          k=1, ef=search_ef, visited=visited, prepared=True)
    reached = search_reaches_vicinity(float(probe.distances[0]), kth_distance)
    return RFixOutcome(added, rounds, reached, needed)
