"""Escape Hardness (EH) — Definition 2 and Algorithm 2 of the paper.

For a query ``q`` and its nearest neighbors ranked ``1..K``:

    EH(q, u -> v) = the smallest K such that v is reachable from u inside
                    QNG_K(q)  (equivalently: the minimum over u->v paths of
                    the maximum NN-rank of any node on the path).

Corollary 1 gives EH its meaning: greedy search with search-list size
``L >= EH(q, u->v)`` starting from ``u`` is guaranteed to visit ``v`` —
so small EH between all pairs of a query's top-k NNs certifies the local
graph structure.

Two implementations are provided:

- :func:`escape_hardness` — the paper's incremental algorithm: add NNs in
  rank order, maintaining a transitive closure over bitset rows and updating
  it in O(K) row-ORs per insertion (new paths created by inserting node m
  must traverse m exactly once, so one row build plus one absorb pass per
  previously inserted node suffices — no full Floyd re-run needed).
- :func:`escape_hardness_bruteforce` — the definition, computed as a minimax
  (bottleneck) path problem via a Dijkstra variant; used to cross-validate
  the incremental algorithm in tests.

Since hard queries may have disconnected neighborhoods, the search is capped
at ``K_max`` ranks (the paper caps at a small multiple of k, e.g. 3k) and
unconnected pairs get ``EH = inf``.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.utils.bitset import BitMatrix


@dataclasses.dataclass
class EscapeHardnessResult:
    """EH matrix of one query plus the context needed to act on it.

    ``eh[i, j]`` is EH from the (i+1)-th to the (j+1)-th NN (1-indexed ranks
    as values; diagonal is 0; ``inf`` where unreachable within ``K_max``).
    ``nn_ids`` holds the global ids of the top-``K_max`` NNs.
    """

    nn_ids: np.ndarray
    k: int
    K_max: int
    eh: np.ndarray

    def reachable(self, threshold: float | None = None) -> np.ndarray:
        """Boolean matrix: EH <= threshold (default: any finite EH)."""
        if threshold is None:
            threshold = float(self.K_max)
        return self.eh <= threshold

    def hardness_score(self) -> float:
        """Scalar summary: mean EH with inf clipped to 2*K_max.

        Used for ranking queries by hardness (Fig. 13(b) correlation); higher
        means the neighborhood graph is worse.
        """
        clipped = np.minimum(self.eh, 2.0 * self.K_max)
        return float(clipped.mean())

    def n_unreachable_pairs(self) -> int:
        """Ordered (u, v) pairs with infinite EH."""
        return int(np.isinf(self.eh).sum())


def _local_adjacency(neighbors_fn, nn_ids: np.ndarray) -> tuple[list[list[int]], list[list[int]]]:
    """Local out- and in-adjacency over the rank-ordered NN set."""
    local = {int(g): r for r, g in enumerate(nn_ids)}
    if len(local) != len(nn_ids):
        raise ValueError("nn_ids contains duplicates")
    out: list[list[int]] = []
    for g in nn_ids:
        row = []
        for v in neighbors_fn(int(g)):
            r = local.get(int(v))
            if r is not None:
                row.append(r)
        out.append(row)
    incoming: list[list[int]] = [[] for _ in nn_ids]
    for u, row in enumerate(out):
        for v in row:
            incoming[v].append(u)
    return out, incoming


def escape_hardness(
    neighbors_fn,
    nn_ids: np.ndarray,
    k: int,
) -> EscapeHardnessResult:
    """Incremental EH computation (paper Algorithm 2).

    Parameters
    ----------
    neighbors_fn:
        ``global_id -> np.ndarray`` out-neighbors in the full graph index.
    nn_ids:
        Top-``K_max`` NN ids of the query, ascending by distance; ``K_max``
        is implied by its length.
    k:
        The EH matrix covers the top-``k`` NNs (``k <= len(nn_ids)``).
    """
    nn_ids = np.asarray(nn_ids, dtype=np.int64)
    K_max = nn_ids.shape[0]
    if not 0 < k <= K_max:
        raise ValueError(f"k={k} must be in [1, len(nn_ids)={K_max}]")

    out, incoming = _local_adjacency(neighbors_fn, nn_ids)
    closure = BitMatrix(K_max)
    eh = np.full((k, k), np.inf)
    np.fill_diagonal(eh, 0.0)
    k_mask = (1 << k) - 1
    pending = k * k - k

    for r in range(K_max):
        rank_value = float(r + 1)
        # Build the new node's reach row: itself plus everything its present
        # out-neighbors already reach (paths from r use r only as the start).
        row = 1 << r
        for b in out[r]:
            if b < r:
                row |= closure.rows[b]
        closure.rows[r] = row
        # Present nodes that reach an in-neighbor of r now also reach
        # everything r reaches; any genuinely new path threads r once.
        in_bits = 0
        for a in incoming[r]:
            if a < r:
                in_bits |= 1 << a
        in_bits |= 1 << r  # direct edges u -> r count too
        for u in range(r + 1):
            reaches_r = (u == r) or bool(closure.rows[u] & in_bits)
            if not reaches_r:
                continue
            if u != r:
                merged = closure.rows[u] | row
                if merged == closure.rows[u]:
                    continue
                new_bits = merged & ~closure.rows[u]
                closure.rows[u] = merged
            else:
                new_bits = row & ~(1 << r)
            if u >= k:
                continue
            fresh = new_bits & k_mask
            while fresh:
                low = fresh & -fresh
                v = low.bit_length() - 1
                if np.isinf(eh[u, v]):
                    eh[u, v] = rank_value
                    pending -= 1
                fresh ^= low
        if pending == 0:
            break

    return EscapeHardnessResult(nn_ids=nn_ids, k=k, K_max=K_max, eh=eh)


def escape_hardness_bruteforce(
    neighbors_fn,
    nn_ids: np.ndarray,
    k: int,
) -> EscapeHardnessResult:
    """EH straight from the definition, as a minimax-path computation.

    The smallest K with v reachable from u in QNG_K equals the minimum over
    u->v paths of the maximum 1-indexed rank on the path (endpoints
    included) — a bottleneck shortest path solved per source with a Dijkstra
    variant.  O(k * K_max * degree * log) — fine at test scale, and entirely
    independent of the incremental algorithm, so it serves as its oracle.
    """
    nn_ids = np.asarray(nn_ids, dtype=np.int64)
    K_max = nn_ids.shape[0]
    if not 0 < k <= K_max:
        raise ValueError(f"k={k} must be in [1, len(nn_ids)={K_max}]")
    out, _ = _local_adjacency(neighbors_fn, nn_ids)
    eh = np.full((k, k), np.inf)
    np.fill_diagonal(eh, 0.0)
    for src in range(k):
        best = [np.inf] * K_max
        best[src] = float(src + 1)
        heap = [(best[src], src)]
        while heap:
            cost, u = heapq.heappop(heap)
            if cost > best[u]:
                continue
            for v in out[u]:
                new_cost = max(cost, float(v + 1))
                if new_cost < best[v]:
                    best[v] = new_cost
                    heapq.heappush(heap, (new_cost, v))
        for dst in range(k):
            if dst != src:
                eh[src, dst] = best[dst]
    return EscapeHardnessResult(nn_ids=nn_ids, k=k, K_max=K_max, eh=eh)


def reachability_matrix(eh_result: EscapeHardnessResult,
                        threshold: float | None = None) -> np.ndarray:
    """The ε-reachable matrix S of Definition 3 (True where EH <= threshold)."""
    return eh_result.reachable(threshold)
