"""The paper's contribution: Escape Hardness, NGFix, RFix, and extensions.

Layered as the paper presents it:

- :mod:`qng` — the k-Neighboring Graph around a query and its connectivity
  statistics (Sec. 4 analysis, Figs. 3-4).
- :mod:`escape_hardness` — the EH metric and its incremental computation
  (Sec. 5.2, Algorithm 2).
- :mod:`ngfix` — Neighboring Graph Defects Fixing (Sec. 5.3, Algorithm 3),
  plus the ablation fixers (reconstruct-RNG, random connect) of Fig. 13(c).
- :mod:`rfix` — Reachability Fixing (Sec. 5.4, Algorithm 4).
- :mod:`fixer` — the NGFix* orchestrator combining both over a historical
  query stream, with exact or approximate preprocessing.
- :mod:`maintenance` — insert/delete maintenance (Sec. 5.5).
- :mod:`augment`, :mod:`ngfix_plus`, :mod:`hash_cache`, :mod:`adaptive` —
  the Section 7 extensions.
- :mod:`analysis` — two-phase search diagnostics backing Fig. 2.
"""

from repro.core.qng import (
    build_qng,
    qng_edge_count,
    average_reachable,
    qng_connectivity_report,
)
from repro.core.escape_hardness import (
    EscapeHardnessResult,
    escape_hardness,
    escape_hardness_bruteforce,
    reachability_matrix,
)
from repro.core.ngfix import ngfix_query, rng_overlay_fix, random_connect_fix
from repro.core.rfix import rfix_query
from repro.core.fixer import FixConfig, NGFixer
from repro.core.maintenance import IndexMaintainer
from repro.core.augment import augment_queries
from repro.core.ngfix_plus import ngfix_plus_query
from repro.core.hash_cache import HashTableCache, CachedSearcher
from repro.core.adaptive import AdaptiveSearcher
from repro.core.analysis import (
    phase_reach_stats,
    recall_histogram,
    discovery_edge_stats,
)
from repro.core.hardness_baselines import (
    distance_hardness,
    epsilon_hardness,
    effort_hardness,
    eh_hardness,
    hardness_correlations,
)
from repro.core.visualize import classical_mds, qng_layout, ascii_scatter, render_qng
from repro.core.workload_adapter import WorkloadAdapter
from repro.core.explain import explain_query

__all__ = [
    "build_qng",
    "qng_edge_count",
    "average_reachable",
    "qng_connectivity_report",
    "EscapeHardnessResult",
    "escape_hardness",
    "escape_hardness_bruteforce",
    "reachability_matrix",
    "ngfix_query",
    "rng_overlay_fix",
    "random_connect_fix",
    "rfix_query",
    "FixConfig",
    "NGFixer",
    "IndexMaintainer",
    "augment_queries",
    "ngfix_plus_query",
    "HashTableCache",
    "CachedSearcher",
    "AdaptiveSearcher",
    "phase_reach_stats",
    "recall_histogram",
    "discovery_edge_stats",
    "distance_hardness",
    "epsilon_hardness",
    "effort_hardness",
    "eh_hardness",
    "hardness_correlations",
    "classical_mds",
    "qng_layout",
    "ascii_scatter",
    "render_qng",
    "WorkloadAdapter",
    "explain_query",
]
