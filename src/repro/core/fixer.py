"""NGFix* orchestrator: detect-and-fix over a historical query stream.

``NGFixer`` wraps any :class:`~repro.graphs.base.GraphIndex` (the paper uses
HNSW's bottom layer) and, for each historical query:

1. **Preprocess** — obtain the query's top-``K_max`` NNs, either exactly
   (batched brute force) or approximately (a wider greedy search on the
   current graph; Sec. 5.1 — the paper shows quality is nearly identical and
   construction 2.35-9x faster than RoarGraph, which cannot use approximate
   ground truth).
2. **Measure** — compute the Escape Hardness matrix over the top-k NNs.
3. **NGFix** — add MST-ordered extra edges until all NN pairs are mutually
   ε-reachable (Algorithm 3).
4. **RFix** — if greedy search from the medoid cannot even reach the query's
   vicinity, expand the stalling point's neighbors (Algorithm 4).

The paper applies the fixing pass twice with different ``k`` (a large k for
high-recall regimes, then a small k for top-10 retrieval); ``FixConfig.rounds``
expresses that schedule.  The fixer itself satisfies the index protocol
(``search`` + ``dc``), always entering at the base-data medoid per Theorem 5.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from repro.core.escape_hardness import EscapeHardnessResult, escape_hardness
from repro.core.ngfix import FixOutcome, ngfix_query
from repro.core.rfix import RFixOutcome, rfix_query
from repro.evalx.ground_truth import compute_ground_truth
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.search import BatchSearchEngine, SearchResult, greedy_search
from repro.utils.parallel import chunk_bounds, effective_workers, parallel_map
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix


@dataclasses.dataclass
class FixConfig:
    """Knobs of NGFix* (paper Sec. 6.1 / 6.6 parameters, scaled).

    ``k`` is the NN count whose pairwise reachability each round certifies;
    ``hard_ratio`` bounds the EH search at ``K_max = ceil(hard_ratio * k)``
    (the paper caps at a small multiple of k, recommending 1.2-2 for large k,
    3 for small); ``eh_threshold`` is the ε of ε-reachability (default:
    ``K_max``, the paper's "very few edges exceed it" setting);
    ``max_extra_degree`` is the per-node extra-edge budget.
    """

    k: int = 10
    hard_ratio: float = 3.0
    eh_threshold: float | None = None
    max_extra_degree: int = 12
    evict_strategy: str = "eh"
    preprocess: str = "exact"  # "exact" | "approx"
    approx_ef: int = 120
    rounds: tuple[int, ...] | None = None  # defaults to (k,)
    rfix: bool = True
    rfix_search_ef: int | None = None  # defaults to k
    rfix_expand_ef: int | None = None  # defaults to 4 * search_ef
    rfix_max_rounds: int = 5
    seed: int = 0
    # Fork-pool width for the offline stages (ground truth, approximate
    # preprocessing, speculative EH); 1 = fully serial.  Any value produces
    # the same graph — see NGFixer.fit.
    n_workers: int = 1

    def __post_init__(self):
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.hard_ratio < 1.0:
            raise ValueError(f"hard_ratio must be >= 1, got {self.hard_ratio}")
        if self.preprocess not in ("exact", "approx"):
            raise ValueError(f"preprocess must be 'exact' or 'approx', got {self.preprocess!r}")
        if self.rounds is None:
            self.rounds = (self.k,)
        if any(r <= 0 for r in self.rounds):
            raise ValueError(f"rounds must be positive, got {self.rounds}")

    def k_max(self, k: int | None = None) -> int:
        """EH rank cap for a round with the given k."""
        return int(math.ceil(self.hard_ratio * (k if k is not None else self.k)))


@dataclasses.dataclass
class QueryFixRecord:
    """Per-query diagnostics collected during fitting (feeds Fig. 13)."""

    query_index: int
    round_k: int
    hardness: float
    unreachable_pairs: int
    edges_added: int
    edges_evicted: int
    rfix_needed: bool
    rfix_edges: int


class NGFixer:
    """Dynamically detect and fix graph defects around (historical) queries."""

    def __init__(self, index: GraphIndex, config: FixConfig | None = None):
        self.index = index
        self.config = config or FixConfig()
        self.entry = medoid_id(index.dc)
        self.records: list[QueryFixRecord] = []
        self.preprocess_seconds = 0.0
        self.fix_seconds = 0.0
        # Distance computations spent obtaining per-query ground truth; the
        # scale-independent cost the paper's construction comparison turns on
        # (exact = |Q| * n, approximate = graph-search work).
        self.preprocess_ndc = 0
        self._rng = ensure_rng(self.config.seed)
        self._batch_engine: BatchSearchEngine | None = None

    # -- index protocol -----------------------------------------------------

    @property
    def dc(self):
        return self.index.dc

    @property
    def adjacency(self):
        return self.index.adjacency

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self.entry]

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               collect_visited: bool = False) -> SearchResult:
        """Greedy search from the medoid over the fixed graph."""
        if ef is None:
            ef = max(k, 10)
        q = self.dc.prepare_query(query)
        return greedy_search(
            self.dc, self.index._neighbors_fn(), [self.entry], q, k=k, ef=ef,
            visited=self.index._visited,
            excluded=self.adjacency.excluded_ids(),
            collect_visited=collect_visited, prepared=True,
        )

    def search_batch(self, queries: np.ndarray, k: int, ef: int | None = None,
                     batch_size: int = 32) -> list[SearchResult]:
        """Batched medoid-entry search; same results as per-query :meth:`search`."""
        if ef is None:
            ef = max(k, 10)
        engine = self._batch_engine
        if engine is None or engine.batch_size != batch_size:
            engine = BatchSearchEngine(
                self.dc,
                self.adjacency.neighbors,
                self.entry_points,
                excluded_fn=self.adjacency.excluded_ids,
                batch_size=batch_size,
                graph_fn=self.adjacency.traversal,
            )
            self._batch_engine = engine
        return engine.search_batch(queries, k, ef)

    def stats(self) -> dict:
        """Index statistics plus fixing totals."""
        out = self.index.stats()
        out.update(
            queries_fixed=len({r.query_index for r in self.records}),
            total_edges_added=sum(r.edges_added + r.rfix_edges for r in self.records),
            preprocess_seconds=self.preprocess_seconds,
            fix_seconds=self.fix_seconds,
        )
        return out

    # -- preprocessing (Sec. 5.1) ---------------------------------------------

    def _preprocess_exact(self, queries: np.ndarray, n_neighbors: int):
        removed = self.adjacency.removed
        if removed and self.dc.size - len(removed) >= n_neighbors:
            # Compacted rows linger in the data matrix; brute force over
            # them would hand repair ids whose nodes no longer exist, and
            # the resulting extra edges would resurrect them.  Mask them
            # out and map the ground truth back to global ids.
            alive = np.setdiff1d(
                np.arange(self.dc.size, dtype=np.int64),
                np.fromiter(removed, dtype=np.int64, count=len(removed)))
            gt = compute_ground_truth(self.dc.data[alive], queries,
                                      n_neighbors, self.dc.metric,
                                      n_workers=self.config.n_workers)
            self.preprocess_ndc += queries.shape[0] * alive.shape[0]
            return alive[gt.ids], gt.distances
        gt = compute_ground_truth(self.dc.data, queries, n_neighbors,
                                  self.dc.metric,
                                  n_workers=self.config.n_workers)
        self.preprocess_ndc += queries.shape[0] * self.dc.size
        return gt.ids, gt.distances

    def _worker_chunks(self, n_items: int) -> list[tuple[int, int]]:
        """Chunk boundaries for a fork-pool stage over ``n_items`` queries.

        A few chunks per worker keeps the pool load-balanced while the
        per-chunk dispatch overhead stays negligible.
        """
        workers = effective_workers(self.config.n_workers)
        chunk = max(1, -(-n_items // (4 * workers)))
        return chunk_bounds(n_items, chunk)

    def _preprocess_approx(self, queries: np.ndarray, n_neighbors: int):
        """Approximate NNs from a wider greedy search on the current graph.

        The per-query searches are independent reads of a static graph, so
        ``n_workers > 1`` spreads chunks over a fork pool.  Each chunk
        returns its NDC as a *delta* (the worker restores the counters it
        touched), and the master applies the deltas in chunk order — the
        bookkeeping is identical whether a chunk ran in-process or forked.
        """
        ef = max(self.config.approx_ef, n_neighbors)
        ids = np.empty((queries.shape[0], n_neighbors), dtype=np.int64)
        dists = np.empty((queries.shape[0], n_neighbors), dtype=np.float64)

        def chunk(bounds: tuple[int, int]):
            start, stop = bounds
            c_ids = np.empty((stop - start, n_neighbors), dtype=np.int64)
            c_dists = np.empty((stop - start, n_neighbors), dtype=np.float64)
            ndc0, pre0 = self.dc.ndc, self.preprocess_ndc
            for j, query in enumerate(queries[start:stop]):
                result = self.search(query, k=n_neighbors, ef=ef)
                if len(result.ids) < n_neighbors:
                    # Degenerate graph region: top up with exact search.
                    exact_ids, exact_d = self._preprocess_exact(
                        query[None, :], n_neighbors)
                    c_ids[j], c_dists[j] = exact_ids[0], exact_d[0]
                else:
                    c_ids[j] = result.ids
                    c_dists[j] = result.distances
            ndc_delta = self.dc.ndc - ndc0
            pre_delta = self.preprocess_ndc - pre0
            self.dc.ndc, self.preprocess_ndc = ndc0, pre0
            return c_ids, c_dists, ndc_delta, pre_delta

        bounds = self._worker_chunks(queries.shape[0])
        out = parallel_map(chunk, bounds, n_workers=self.config.n_workers)
        for (start, stop), (c_ids, c_dists, ndc_delta, pre_delta) in zip(bounds, out):
            ids[start:stop] = c_ids
            dists[start:stop] = c_dists
            self.dc.ndc += ndc_delta
            self.preprocess_ndc += ndc_delta + pre_delta
        return ids, dists

    # -- fixing ---------------------------------------------------------------

    def _fix_one(self, query_index: int, query: np.ndarray, nn_ids: np.ndarray,
                 nn_distances: np.ndarray, round_k: int,
                 eh: EscapeHardnessResult | None = None) -> QueryFixRecord:
        config = self.config
        K_max = config.k_max(round_k)
        if eh is None:
            eh = escape_hardness(self.adjacency.neighbors, nn_ids[:K_max],
                                 round_k)
        outcome: FixOutcome = ngfix_query(
            self.adjacency, self.dc, eh,
            eh_threshold=config.eh_threshold,
            max_extra_degree=config.max_extra_degree,
            evict_strategy=config.evict_strategy,
            rng=self._rng,
        )
        rfix_out = RFixOutcome([], 0, True, False)
        if config.rfix:
            search_ef = config.rfix_search_ef or round_k
            rfix_out = rfix_query(
                self.adjacency, self.dc, query,
                nn_ids[:round_k], nn_distances[:round_k],
                entry_point=self.entry,
                search_ef=search_ef,
                expand_ef=config.rfix_expand_ef,
                max_extra_degree=config.max_extra_degree,
                max_rounds=config.rfix_max_rounds,
                visited=self.index._visited,
            )
        record = QueryFixRecord(
            query_index=query_index,
            round_k=round_k,
            hardness=eh.hardness_score(),
            unreachable_pairs=eh.n_unreachable_pairs(),
            edges_added=len(outcome.edges_added),
            edges_evicted=len(outcome.edges_evicted),
            rfix_needed=rfix_out.needed_fix,
            rfix_edges=len(rfix_out.edges_added),
        )
        self.records.append(record)
        return record

    def _precompute_eh(self, ids: np.ndarray, round_k: int):
        """Speculative EH matrices for all queries, against the current graph.

        Escape Hardness depends only on the out-edges of the query's top
        ``K_max`` NNs (Algorithm 2 never leaves the NN set), so EH for every
        query can be computed up front on a fork pool against a snapshot of
        the adjacency.  Returns ``(results, v0)`` where ``v0`` is the
        store's mutation version at snapshot time: a precomputed result is
        *valid* for query ``i`` iff none of its NN nodes were touched after
        ``v0`` (checked per query via the store's per-node mutation stamps).
        """
        K_max = self.config.k_max(round_k)
        v0 = self.adjacency.mutation_version
        neighbors_fn = self.adjacency.neighbors

        def chunk(bounds: tuple[int, int]):
            start, stop = bounds
            return [escape_hardness(neighbors_fn, ids[i][:K_max], round_k)
                    for i in range(start, stop)]

        results: list[EscapeHardnessResult] = []
        bounds = self._worker_chunks(ids.shape[0])
        for part in parallel_map(chunk, bounds, n_workers=self.config.n_workers):
            results.extend(part)
        return results, v0

    def fit(self, queries: np.ndarray, use_ngfix: bool = True) -> "NGFixer":
        """Fix the graph for a batch of historical queries (all rounds).

        With ``config.n_workers > 1`` the preprocessing stage and the EH
        measurement fan out over a fork pool; edge mutations (NGFix/RFix)
        stay serial in query order, and any speculative EH invalidated by an
        earlier query's mutations is recomputed in place — the resulting
        graph is identical to a fully serial run.
        """
        queries = check_matrix(queries, "queries")
        for round_k in self.config.rounds:
            n_neighbors = self.config.k_max(round_k)
            start = time.perf_counter()
            if self.config.preprocess == "exact":
                ids, dists = self._preprocess_exact(queries, n_neighbors)
            else:
                ids, dists = self._preprocess_approx(queries, n_neighbors)
            self.preprocess_seconds += time.perf_counter() - start

            start = time.perf_counter()
            speculative = None
            if use_ngfix and effective_workers(self.config.n_workers) > 1:
                speculative = self._precompute_eh(ids, round_k)
            K_max = self.config.k_max(round_k)
            for i, query in enumerate(queries):
                if use_ngfix:
                    eh = None
                    if speculative is not None:
                        pre, v0 = speculative
                        if self.adjacency.last_touched(ids[i][:K_max]) <= v0:
                            eh = pre[i]
                    self._fix_one(i, query, ids[i], dists[i], round_k, eh=eh)
                else:  # RFix-only mode for ablations
                    self._rfix_only(i, query, ids[i], dists[i], round_k)
            self.fix_seconds += time.perf_counter() - start
        return self

    def _rfix_only(self, query_index: int, query: np.ndarray, nn_ids, nn_distances,
                   round_k: int) -> None:
        search_ef = self.config.rfix_search_ef or round_k
        rfix_out = rfix_query(
            self.adjacency, self.dc, query, nn_ids[:round_k],
            nn_distances[:round_k], entry_point=self.entry,
            search_ef=search_ef, expand_ef=self.config.rfix_expand_ef,
            max_extra_degree=self.config.max_extra_degree,
            max_rounds=self.config.rfix_max_rounds,
            visited=self.index._visited,
        )
        self.records.append(QueryFixRecord(
            query_index=query_index, round_k=round_k, hardness=0.0,
            unreachable_pairs=0, edges_added=0, edges_evicted=0,
            rfix_needed=rfix_out.needed_fix, rfix_edges=len(rfix_out.edges_added),
        ))

    def fix_query(self, query: np.ndarray) -> list[QueryFixRecord]:
        """Online single-query fixing (the production mode of the paper).

        Uses the configured preprocessing (approximate by default is what
        makes online fixing cheap) and runs every configured round.
        """
        query = np.asarray(query, dtype=np.float32)
        records = []
        for round_k in self.config.rounds:
            n_neighbors = self.config.k_max(round_k)
            start = time.perf_counter()
            if self.config.preprocess == "exact":
                ids, dists = self._preprocess_exact(query[None, :], n_neighbors)
            else:
                ids, dists = self._preprocess_approx(query[None, :], n_neighbors)
            self.preprocess_seconds += time.perf_counter() - start
            start = time.perf_counter()
            records.append(self._fix_one(-1, query, ids[0], dists[0], round_k))
            self.fix_seconds += time.perf_counter() - start
        return records
