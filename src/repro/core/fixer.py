"""NGFix* orchestrator: detect-and-fix over a historical query stream.

``NGFixer`` wraps any :class:`~repro.graphs.base.GraphIndex` (the paper uses
HNSW's bottom layer) and, for each historical query:

1. **Preprocess** — obtain the query's top-``K_max`` NNs, either exactly
   (batched brute force) or approximately (a wider greedy search on the
   current graph; Sec. 5.1 — the paper shows quality is nearly identical and
   construction 2.35-9x faster than RoarGraph, which cannot use approximate
   ground truth).
2. **Measure** — compute the Escape Hardness matrix over the top-k NNs.
3. **NGFix** — add MST-ordered extra edges until all NN pairs are mutually
   ε-reachable (Algorithm 3).
4. **RFix** — if greedy search from the medoid cannot even reach the query's
   vicinity, expand the stalling point's neighbors (Algorithm 4).

The paper applies the fixing pass twice with different ``k`` (a large k for
high-recall regimes, then a small k for top-10 retrieval); ``FixConfig.rounds``
expresses that schedule.  The fixer itself satisfies the index protocol
(``search`` + ``dc``), always entering at the base-data medoid per Theorem 5.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import FixOutcome, ngfix_query
from repro.core.rfix import RFixOutcome, rfix_query
from repro.evalx.ground_truth import compute_ground_truth
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.search import BatchSearchEngine, SearchResult, greedy_search
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix


@dataclasses.dataclass
class FixConfig:
    """Knobs of NGFix* (paper Sec. 6.1 / 6.6 parameters, scaled).

    ``k`` is the NN count whose pairwise reachability each round certifies;
    ``hard_ratio`` bounds the EH search at ``K_max = ceil(hard_ratio * k)``
    (the paper caps at a small multiple of k, recommending 1.2-2 for large k,
    3 for small); ``eh_threshold`` is the ε of ε-reachability (default:
    ``K_max``, the paper's "very few edges exceed it" setting);
    ``max_extra_degree`` is the per-node extra-edge budget.
    """

    k: int = 10
    hard_ratio: float = 3.0
    eh_threshold: float | None = None
    max_extra_degree: int = 12
    evict_strategy: str = "eh"
    preprocess: str = "exact"  # "exact" | "approx"
    approx_ef: int = 120
    rounds: tuple[int, ...] | None = None  # defaults to (k,)
    rfix: bool = True
    rfix_search_ef: int | None = None  # defaults to k
    rfix_expand_ef: int | None = None  # defaults to 4 * search_ef
    rfix_max_rounds: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.hard_ratio < 1.0:
            raise ValueError(f"hard_ratio must be >= 1, got {self.hard_ratio}")
        if self.preprocess not in ("exact", "approx"):
            raise ValueError(f"preprocess must be 'exact' or 'approx', got {self.preprocess!r}")
        if self.rounds is None:
            self.rounds = (self.k,)
        if any(r <= 0 for r in self.rounds):
            raise ValueError(f"rounds must be positive, got {self.rounds}")

    def k_max(self, k: int | None = None) -> int:
        """EH rank cap for a round with the given k."""
        return int(math.ceil(self.hard_ratio * (k if k is not None else self.k)))


@dataclasses.dataclass
class QueryFixRecord:
    """Per-query diagnostics collected during fitting (feeds Fig. 13)."""

    query_index: int
    round_k: int
    hardness: float
    unreachable_pairs: int
    edges_added: int
    edges_evicted: int
    rfix_needed: bool
    rfix_edges: int


class NGFixer:
    """Dynamically detect and fix graph defects around (historical) queries."""

    def __init__(self, index: GraphIndex, config: FixConfig | None = None):
        self.index = index
        self.config = config or FixConfig()
        self.entry = medoid_id(index.dc)
        self.records: list[QueryFixRecord] = []
        self.preprocess_seconds = 0.0
        self.fix_seconds = 0.0
        # Distance computations spent obtaining per-query ground truth; the
        # scale-independent cost the paper's construction comparison turns on
        # (exact = |Q| * n, approximate = graph-search work).
        self.preprocess_ndc = 0
        self._rng = ensure_rng(self.config.seed)
        self._batch_engine: BatchSearchEngine | None = None

    # -- index protocol -----------------------------------------------------

    @property
    def dc(self):
        return self.index.dc

    @property
    def adjacency(self):
        return self.index.adjacency

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self.entry]

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               collect_visited: bool = False) -> SearchResult:
        """Greedy search from the medoid over the fixed graph."""
        if ef is None:
            ef = max(k, 10)
        q = self.dc.prepare_query(query)
        return greedy_search(
            self.dc, self.adjacency.neighbors, [self.entry], q, k=k, ef=ef,
            visited=self.index._visited,
            excluded=self.adjacency.tombstones or None,
            collect_visited=collect_visited, prepared=True,
        )

    def search_batch(self, queries: np.ndarray, k: int, ef: int | None = None,
                     batch_size: int = 32) -> list[SearchResult]:
        """Batched medoid-entry search; same results as per-query :meth:`search`."""
        if ef is None:
            ef = max(k, 10)
        engine = self._batch_engine
        if engine is None or engine.batch_size != batch_size:
            engine = BatchSearchEngine(
                self.dc,
                self.adjacency.neighbors,
                self.entry_points,
                excluded_fn=lambda: self.adjacency.tombstones or None,
                batch_size=batch_size,
            )
            self._batch_engine = engine
        return engine.search_batch(queries, k, ef)

    def stats(self) -> dict:
        """Index statistics plus fixing totals."""
        out = self.index.stats()
        out.update(
            queries_fixed=len({r.query_index for r in self.records}),
            total_edges_added=sum(r.edges_added + r.rfix_edges for r in self.records),
            preprocess_seconds=self.preprocess_seconds,
            fix_seconds=self.fix_seconds,
        )
        return out

    # -- preprocessing (Sec. 5.1) ---------------------------------------------

    def _preprocess_exact(self, queries: np.ndarray, n_neighbors: int):
        gt = compute_ground_truth(self.dc.data, queries, n_neighbors,
                                  self.dc.metric)
        self.preprocess_ndc += queries.shape[0] * self.dc.size
        return gt.ids, gt.distances

    def _preprocess_approx(self, queries: np.ndarray, n_neighbors: int):
        """Approximate NNs from a wider greedy search on the current graph."""
        ef = max(self.config.approx_ef, n_neighbors)
        ids = np.empty((queries.shape[0], n_neighbors), dtype=np.int64)
        dists = np.empty((queries.shape[0], n_neighbors), dtype=np.float64)
        ndc_before = self.dc.ndc
        for i, query in enumerate(queries):
            result = self.search(query, k=n_neighbors, ef=ef)
            if len(result.ids) < n_neighbors:
                # Degenerate graph region: top up with exact search.
                exact_ids, exact_d = self._preprocess_exact(query[None, :], n_neighbors)
                ids[i], dists[i] = exact_ids[0], exact_d[0]
            else:
                ids[i] = result.ids
                dists[i] = result.distances
        self.preprocess_ndc += self.dc.ndc - ndc_before
        return ids, dists

    # -- fixing ---------------------------------------------------------------

    def _fix_one(self, query_index: int, query: np.ndarray, nn_ids: np.ndarray,
                 nn_distances: np.ndarray, round_k: int) -> QueryFixRecord:
        config = self.config
        K_max = config.k_max(round_k)
        eh = escape_hardness(self.adjacency.neighbors, nn_ids[:K_max], round_k)
        outcome: FixOutcome = ngfix_query(
            self.adjacency, self.dc, eh,
            eh_threshold=config.eh_threshold,
            max_extra_degree=config.max_extra_degree,
            evict_strategy=config.evict_strategy,
            rng=self._rng,
        )
        rfix_out = RFixOutcome([], 0, True, False)
        if config.rfix:
            search_ef = config.rfix_search_ef or round_k
            rfix_out = rfix_query(
                self.adjacency, self.dc, query,
                nn_ids[:round_k], nn_distances[:round_k],
                entry_point=self.entry,
                search_ef=search_ef,
                expand_ef=config.rfix_expand_ef,
                max_extra_degree=config.max_extra_degree,
                max_rounds=config.rfix_max_rounds,
                visited=self.index._visited,
            )
        record = QueryFixRecord(
            query_index=query_index,
            round_k=round_k,
            hardness=eh.hardness_score(),
            unreachable_pairs=eh.n_unreachable_pairs(),
            edges_added=len(outcome.edges_added),
            edges_evicted=len(outcome.edges_evicted),
            rfix_needed=rfix_out.needed_fix,
            rfix_edges=len(rfix_out.edges_added),
        )
        self.records.append(record)
        return record

    def fit(self, queries: np.ndarray, use_ngfix: bool = True) -> "NGFixer":
        """Fix the graph for a batch of historical queries (all rounds)."""
        queries = check_matrix(queries, "queries")
        for round_k in self.config.rounds:
            n_neighbors = self.config.k_max(round_k)
            start = time.perf_counter()
            if self.config.preprocess == "exact":
                ids, dists = self._preprocess_exact(queries, n_neighbors)
            else:
                ids, dists = self._preprocess_approx(queries, n_neighbors)
            self.preprocess_seconds += time.perf_counter() - start

            start = time.perf_counter()
            for i, query in enumerate(queries):
                if use_ngfix:
                    self._fix_one(i, query, ids[i], dists[i], round_k)
                else:  # RFix-only mode for ablations
                    self._rfix_only(i, query, ids[i], dists[i], round_k)
            self.fix_seconds += time.perf_counter() - start
        return self

    def _rfix_only(self, query_index: int, query: np.ndarray, nn_ids, nn_distances,
                   round_k: int) -> None:
        search_ef = self.config.rfix_search_ef or round_k
        rfix_out = rfix_query(
            self.adjacency, self.dc, query, nn_ids[:round_k],
            nn_distances[:round_k], entry_point=self.entry,
            search_ef=search_ef, expand_ef=self.config.rfix_expand_ef,
            max_extra_degree=self.config.max_extra_degree,
            max_rounds=self.config.rfix_max_rounds,
            visited=self.index._visited,
        )
        self.records.append(QueryFixRecord(
            query_index=query_index, round_k=round_k, hardness=0.0,
            unreachable_pairs=0, edges_added=0, edges_evicted=0,
            rfix_needed=rfix_out.needed_fix, rfix_edges=len(rfix_out.edges_added),
        ))

    def fix_query(self, query: np.ndarray) -> list[QueryFixRecord]:
        """Online single-query fixing (the production mode of the paper).

        Uses the configured preprocessing (approximate by default is what
        makes online fixing cheap) and runs every configured round.
        """
        query = np.asarray(query, dtype=np.float32)
        records = []
        for round_k in self.config.rounds:
            n_neighbors = self.config.k_max(round_k)
            start = time.perf_counter()
            if self.config.preprocess == "exact":
                ids, dists = self._preprocess_exact(query[None, :], n_neighbors)
            else:
                ids, dists = self._preprocess_approx(query[None, :], n_neighbors)
            self.preprocess_seconds += time.perf_counter() - start
            start = time.perf_counter()
            records.append(self._fix_one(-1, query, ids[0], dists[0], round_k))
            self.fix_seconds += time.perf_counter() - start
        return records
