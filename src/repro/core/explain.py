"""Per-query diagnosis: why is this query hard, and what would fix it?

``explain_query`` packages the paper's analysis machinery (QNG
connectivity, Escape Hardness, the two-phase reach test) into one
operator-facing report — the tool an engineer reaches for when a production
query misbehaves.  The recommended ef comes straight from Corollary 1: the
largest finite EH among the query's NN pairs upper-bounds the search list
needed once the vicinity is reached.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.escape_hardness import escape_hardness
from repro.core.qng import build_qng, average_reachable, isolated_points
from repro.core.rfix import search_reaches_vicinity
from repro.graphs.base import medoid_id
from repro.graphs.search import greedy_search
from repro.utils.validation import check_positive


def explain_query(index, query: np.ndarray, k: int = 10,
                  hard_ratio: float = 3.0) -> dict:
    """Diagnose one query against an index (or NGFixer).

    Returns a dict with:

    - ``qng``: edge count, average reachable fraction, isolated points;
    - ``escape_hardness``: unreachable pair count, hardness score, max
      finite EH;
    - ``phase1``: whether a greedy probe from the medoid reaches the
      query's vicinity (the RFix trigger);
    - ``verdict``: "easy" / "needs-ngfix" / "needs-rfix";
    - ``recommended_ef``: Corollary-1 bound (max finite EH, floored at k),
      or the K_max cap when pairs are unreachable.
    """
    check_positive(k, "k")
    query = np.asarray(query, dtype=np.float32)
    dc = index.dc
    K_max = int(math.ceil(hard_ratio * k))
    q = dc.prepare_query(query)

    # exact neighborhood (one brute pass; explain() is a diagnostic, not a
    # serving path)
    saved = dc.ndc
    dists = dc.all_to_query(q)
    dc.ndc = saved
    order = np.argsort(dists, kind="stable")[:K_max]
    nn_ids = order.astype(np.int64)
    kth_distance = float(dists[order[k - 1]])

    local = build_qng(index.adjacency.neighbors, nn_ids[:k])
    eh = escape_hardness(index.adjacency.neighbors, nn_ids, k)
    finite = eh.eh[np.isfinite(eh.eh) & (eh.eh > 0)]
    max_finite = float(finite.max()) if finite.size else float(k)

    entry = index.entry_points(q)[0] if hasattr(index, "entry_points") \
        else medoid_id(dc)
    probe = greedy_search(dc, index.adjacency.neighbors, [entry], q,
                          k=1, ef=k, prepared=True)
    reaches = search_reaches_vicinity(float(probe.distances[0]), kth_distance)

    unreachable = eh.n_unreachable_pairs()
    if not reaches:
        verdict = "needs-rfix"
    elif unreachable > 0:
        verdict = "needs-ngfix"
    else:
        verdict = "easy"
    recommended_ef = int(K_max if unreachable else max(max_finite, k))

    return {
        "k": k,
        "qng": {
            "n_edges": sum(len(row) for row in local),
            "avg_reachable_fraction": average_reachable(local) / k,
            "isolated_points": isolated_points(local),
        },
        "escape_hardness": {
            "unreachable_pairs": unreachable,
            "hardness_score": eh.hardness_score(),
            "max_finite_eh": max_finite,
        },
        "phase1": {
            "entry": int(entry),
            "reaches_vicinity": bool(reaches),
            "anchor_distance": float(probe.distances[0]),
            "kth_nn_distance": kth_distance,
        },
        "verdict": verdict,
        "recommended_ef": recommended_ef,
    }
