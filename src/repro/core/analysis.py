"""Two-phase search diagnostics (Sec. 4, Fig. 2).

The paper splits greedy search into (1) traveling from the entry point to
the query's vicinity and (2) exploring within the vicinity, observing that
phase 1 almost always succeeds (recall > 0) while phase 2 loses NNs to
missing edges.  These helpers quantify both phenomena for any index:

- :func:`phase_reach_stats` — fraction of queries whose search reached the
  vicinity at all, and the recall distribution (Fig. 2(b)).
- :func:`recall_histogram` — per-query recall bucketed the way the paper
  plots it.
- :func:`qng_recall_correlation` — QNG connectivity vs recall (Fig. 4(a)).
"""

from __future__ import annotations

import numpy as np

from repro.core.qng import build_qng, average_reachable
from repro.evalx.ground_truth import GroundTruth
from repro.evalx.metrics import recall_per_query


def recall_histogram(recalls: np.ndarray, edges=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0)) -> dict:
    """Fraction of queries per recall bucket; the last bucket is [0.9, 1.0]."""
    recalls = np.asarray(recalls, dtype=np.float64)
    out = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        if hi == edges[-1]:
            mask = (recalls >= lo) & (recalls <= hi)
            label = f"[{lo:.2f}, {hi:.2f}]"
        else:
            mask = (recalls >= lo) & (recalls < hi)
            label = f"[{lo:.2f}, {hi:.2f})"
        out[label] = float(mask.mean())
    return out


def phase_reach_stats(index, queries: np.ndarray, gt: GroundTruth, k: int,
                      ef: int) -> dict:
    """Run all queries once; report phase-1 success rate and recall stats.

    "Reached vicinity" uses the paper's operational test: the search found
    at least one true top-k neighbor (recall > 0) — equivalently, phase 2
    began.
    """
    queries = np.asarray(queries, dtype=np.float32)
    gt_k = gt.top(k)
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    recalls = recall_per_query(found, gt_k.ids)
    return {
        "reached_vicinity_fraction": float((recalls > 0).mean()),
        "mean_recall": float(recalls.mean()),
        "recalls": recalls,
        "histogram": recall_histogram(recalls),
    }


def discovery_edge_stats(index, queries: np.ndarray, k: int, ef: int) -> dict:
    """How results are *discovered*: via base edges or NGFix extra edges.

    Replays greedy search recording, for every visited node, the edge that
    first reached it; then classifies the discovery edges of the returned
    top-k.  A healthy fixed index discovers a meaningful share of results
    through extra edges on the workload it was fixed for — direct evidence
    the added edges carry traffic, not just bytes.

    Works on any object exposing ``dc``, ``adjacency`` and
    ``entry_points`` (indexes and NGFixer alike).
    """
    import heapq

    dc = index.dc
    adjacency = index.adjacency
    total_results = 0
    via_extra = 0
    via_entry = 0
    for query in np.atleast_2d(np.asarray(queries, dtype=np.float32)):
        q = dc.prepare_query(query)
        entries = index.entry_points(q)
        parent: dict[int, int | None] = {int(e): None for e in entries}
        candidates = []
        results: list[tuple[float, int]] = []
        for e in entries:
            d = dc.one_to_query(int(e), q)
            heapq.heappush(candidates, (d, int(e)))
            heapq.heappush(results, (-d, int(e)))
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            dist_u, u = heapq.heappop(candidates)
            if len(results) >= ef and dist_u > -results[0][0]:
                break
            for v in adjacency.neighbors(u).tolist():
                if v in parent:
                    continue
                parent[v] = u
                d = dc.one_to_query(v, q)
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, v))
                    heapq.heappush(results, (-d, v))
                    if len(results) > ef:
                        heapq.heappop(results)
        top = sorted((-d, node) for d, node in results)[:k]
        for _, node in top:
            total_results += 1
            origin = parent.get(node)
            if origin is None:
                via_entry += 1
            elif node in adjacency.extra_neighbors(origin):
                via_extra += 1
    return {
        "total_results": total_results,
        "via_extra_edges": via_extra,
        "via_entry": via_entry,
        "extra_fraction": via_extra / max(total_results, 1),
    }


def qng_recall_correlation(index, queries: np.ndarray, gt: GroundTruth, k: int,
                           ef: int) -> dict:
    """Per-query QNG average-reachability vs recall (Fig. 4(a)).

    Returns the two aligned arrays plus their Pearson correlation; the paper
    finds a strong positive relationship (poorly connected neighborhood ->
    low recall).
    """
    queries = np.asarray(queries, dtype=np.float32)
    gt_k = gt.top(k)
    reach = np.empty(queries.shape[0])
    found = np.empty((queries.shape[0], k), dtype=np.int64)
    for i, query in enumerate(queries):
        adj = build_qng(index.adjacency.neighbors, gt_k.ids[i])
        reach[i] = average_reachable(adj)
        found[i] = index.search(query, k=k, ef=ef).ids[:k]
    recalls = recall_per_query(found, gt_k.ids)
    if np.std(reach) < 1e-12 or np.std(recalls) < 1e-12:
        corr = float("nan")
    else:
        corr = float(np.corrcoef(reach, recalls)[0, 1])
    return {
        "avg_reachable": reach,
        "recalls": recalls,
        "pearson_r": corr,
    }
