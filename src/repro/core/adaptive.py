"""Similarity-adaptive search parameter selection (Sec. 7).

Fig. 9 of the paper shows that the ef needed for a target recall varies
strongly with a test query's similarity to the historical workload: queries
near fixed regions need small ef; dissimilar queries need much more.  The
proposed strategy — compute the new query's similarity to the history, then
pick ef accordingly — is implemented here:

1. :meth:`AdaptiveSearcher.calibrate` bins a calibration query set by
   distance-to-nearest-historical-query and, per bin, finds the smallest ef
   reaching the target recall.
2. :meth:`AdaptiveSearcher.search` measures the incoming query's history
   distance (one brute-force pass over the compact history set) and applies
   the bin's ef.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.evalx.ground_truth import GroundTruth
from repro.evalx.metrics import recall_per_query
from repro.graphs.search import SearchResult
from repro.utils.validation import check_matrix, check_positive


class AdaptiveSearcher:
    """Per-query ef selection from similarity to the historical workload."""

    def __init__(self, index, history: np.ndarray, n_bins: int = 3):
        check_positive(n_bins, "n_bins")
        self.index = index
        self.history = check_matrix(history, "history")
        self.n_bins = n_bins
        self._edges: np.ndarray | None = None
        self._bin_ef: list[int] | None = None
        self.fallback_ef: int | None = None

    @property
    def dc(self):
        return self.index.dc

    @property
    def metric(self) -> Metric:
        return self.index.dc.metric

    def history_distance(self, queries: np.ndarray) -> np.ndarray:
        """Distance from each query to its nearest historical query."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        return pairwise_distances(queries, self.history, self.metric).min(axis=1)

    def calibrate(
        self,
        queries: np.ndarray,
        gt: GroundTruth,
        k: int,
        target_recall: float = 0.95,
        ef_grid: list[int] | None = None,
    ) -> dict:
        """Learn per-similarity-bin ef values from a calibration set.

        Bins are similarity quantiles; per bin the smallest grid ef whose
        mean recall meets ``target_recall`` is kept (grid maximum if never
        met).  Returns the calibration table for inspection.
        """
        queries = check_matrix(queries, "queries")
        if ef_grid is None:
            ef_grid = [k, 2 * k, 4 * k, 8 * k, 16 * k]
        ef_grid = sorted(set(ef_grid))
        sims = self.history_distance(queries)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self._edges = np.quantile(sims, quantiles)
        bins = np.digitize(sims, self._edges)

        gt_k = gt.top(k)
        fitted: list[int | None] = []
        table = {}
        for b in range(self.n_bins):
            members = np.flatnonzero(bins == b)
            chosen: int | None = None
            if members.size:
                chosen = ef_grid[-1]
                for ef in ef_grid:
                    found = self._grid_ids(queries, members, k, ef)
                    recall = float(recall_per_query(found, gt_k.ids[members]).mean())
                    if recall >= target_recall:
                        chosen = ef
                        break
            fitted.append(chosen)
            table[b] = {"n_queries": int(members.size), "ef": chosen}
        # Empty bins inherit the nearest *fitted* bin's ef (ties go to the
        # harder side) instead of silently pinning the grid maximum: no
        # calibration query ever landed there, so the grid max would claim a
        # precision the data cannot support.
        fit_idx = [b for b, ef in enumerate(fitted) if ef is not None]
        self._bin_ef = []
        for b, ef in enumerate(fitted):
            if ef is None:
                src = min(fit_idx, key=lambda f: (abs(f - b), -f))
                ef = fitted[src]
                table[b]["ef"] = ef
                table[b]["inherited_from"] = src
            self._bin_ef.append(ef)
        self.fallback_ef = max(self._bin_ef)
        return table

    def _grid_ids(self, queries: np.ndarray, members: np.ndarray, k: int,
                  ef: int) -> np.ndarray:
        """Top-k id matrix for one (bin, ef) calibration cell.

        Routed through the index's batched engine when it has one —
        lock-step batched search is bit-identical to the sequential path
        at its defaults, so the chosen efs do not change; only the
        O(bins x grid x queries) python loop does.
        """
        search_batch = getattr(self.index, "search_batch", None)
        if search_batch is not None:
            results = search_batch(queries[members], k=k, ef=ef)
        else:
            results = [self.index.search(queries[i], k=k, ef=ef)
                       for i in members]
        found = np.full((len(results), k), -1, dtype=np.int64)
        for row, result in enumerate(results):
            ids = result.ids[:k]
            found[row, :len(ids)] = ids
        return found

    def ef_for(self, query: np.ndarray) -> int:
        """The calibrated ef for one query."""
        if self._bin_ef is None or self._edges is None:
            raise RuntimeError(
                "AdaptiveSearcher has no calibrated bins: call calibrate() "
                "with a calibration query set before ef_for()/search()")
        sim = float(self.history_distance(query[None, :])[0])
        b = int(np.digitize([sim], self._edges)[0])
        return self._bin_ef[b]

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchResult:
        """Search with the per-query calibrated ef (explicit ef overrides)."""
        if ef is None:
            ef = self.ef_for(query)
        return self.index.search(query, k=k, ef=ef)
