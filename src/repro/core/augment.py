"""Gaussian query augmentation for history-poor workloads (Sec. 7).

When only a few representative queries are available (cold start, workload
drift), the paper synthesizes additional historical queries by adding
zero-mean Gaussian noise with per-dimension variance sigma^2 / d to each real
query (sigma = 0.3 performed best among {0.1..0.4} in the paper's WebVid /
MainSearch experiments).  The noisy copies populate the same OOD region, so
NGFix repairs a neighborhood rather than a point.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


def augment_queries(
    queries: np.ndarray,
    per_query: int,
    sigma: float = 0.3,
    include_original: bool = True,
    normalize: bool = False,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Generate ``per_query`` noisy copies of each query.

    Parameters
    ----------
    per_query:
        Synthetic copies per real query (the paper's q/p ratio).
    sigma:
        Noise scale; each dimension receives N(0, sigma^2 / d) noise.
    include_original:
        Prepend the real queries to the output.
    normalize:
        Re-project augmented queries onto the unit sphere (for cosine/IP
        embeddings that live there).
    """
    queries = check_matrix(queries, "queries")
    check_positive(per_query, "per_query")
    check_positive(sigma, "sigma")
    rng = ensure_rng(seed)
    n, d = queries.shape
    noise = rng.standard_normal((n * per_query, d)).astype(np.float32)
    noise *= sigma / np.sqrt(d)
    synthetic = np.repeat(queries, per_query, axis=0) + noise
    if normalize:
        synthetic /= np.maximum(np.linalg.norm(synthetic, axis=1, keepdims=True), 1e-12)
    if include_original:
        return np.vstack([queries, synthetic])
    return synthetic
