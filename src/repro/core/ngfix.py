"""NGFix — Neighboring Graph Defects Fixing (Sec. 5.3, Algorithm 3).

Given one historical query's top-k NNs and their Escape Hardness matrix,
NGFix walks candidate edges between NN pairs in ascending length (Kruskal /
minimum-spanning-tree order) and adds any edge whose endpoints are not yet
mutually ε-reachable, then updates the reachability closure: connecting u and
v makes every (a, b) with a→u and v→b reachable.  Each node has an *extra*
out-degree budget; when exceeded, the extra edge with the lowest stored EH is
evicted first (low EH = the traversal it fixed was easy anyway).

Theorem 4: at most ``2 (k - 1)`` directed edges are added per query — each
undirected addition merges two mutual-reachability classes, so the process is
Kruskal's algorithm on those classes.

Also provided: the two "simple solutions" of Fig. 7 used as ablation
baselines in Fig. 13(c) — overlaying an exact RNG over the neighborhood
(:func:`rng_overlay_fix`) and random edge insertion until reachable
(:func:`random_connect_fix`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.escape_hardness import EscapeHardnessResult
from repro.distances import DistanceComputer, pairwise_distances
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.pruning import rng_prune
from repro.utils.rng_utils import ensure_rng


@dataclasses.dataclass
class FixOutcome:
    """What one fixing pass did for one query."""

    edges_added: list[tuple[int, int]]
    edges_evicted: list[tuple[int, int]]
    fully_reachable: bool


def _finite_eh(value: float, K_max: int) -> float:
    """Storable EH tag: infinite measured EH is clipped to 2*K_max.

    The paper stores EH in 16 bits per extra edge; edges fixing an
    unreachable pair are the most valuable finite-tag edges.  (The literal
    ``inf`` tag is reserved for RFix navigation edges, which are never
    evicted.)
    """
    return float(min(value, 2.0 * K_max))


def enforce_extra_budget(
    adjacency: AdjacencyStore,
    dc: DistanceComputer,
    u: int,
    max_extra_degree: int,
    strategy: str = "eh",
    rng: np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Evict extra edges of ``u`` until the budget holds; returns evictions.

    Strategies (the Fig. 14 ablation):

    - ``"eh"``     — paper default: evict lowest-EH extra edges.
    - ``"random"`` — evict uniformly at random.
    - ``"mrng"``   — re-prune extra edges with the RNG occlusion rule, which
      preferentially drops *long* edges; the paper shows this is the worst
      choice because long edges are exactly what hard queries need.
    """
    evicted: list[tuple[int, int]] = []
    over = adjacency.extra_degree(u) - max_extra_degree
    if over <= 0:
        return evicted
    if strategy == "eh":
        for _ in range(over):
            hit = adjacency.evict_lowest_eh(u)
            if hit is None:
                break
            evicted.append((u, hit[0]))
    elif strategy == "random":
        rng = ensure_rng(rng)
        extras = [v for v, eh in adjacency.extra_neighbors_ro(u).items()
                  if eh != float("inf")]
        picks = rng.choice(len(extras), size=min(over, len(extras)), replace=False)
        for j in picks:
            adjacency.remove_extra_edge(u, extras[int(j)])
            evicted.append((u, extras[int(j)]))
    elif strategy == "mrng":
        # Copying accessor: removals below mutate the dict being summarized.
        extra = adjacency.extra_neighbors(u)
        protected = [v for v, eh in extra.items() if eh == float("inf")]
        prunable = [v for v, eh in extra.items() if eh != float("inf")]
        budget = max(max_extra_degree - len(protected), 0)
        keep = set(rng_prune(dc, u, prunable, budget))
        for v in prunable:
            if v not in keep:
                adjacency.remove_extra_edge(u, v)
                evicted.append((u, v))
    else:
        raise ValueError(f"unknown eviction strategy {strategy!r}")
    return evicted


def ngfix_query(
    adjacency: AdjacencyStore,
    dc: DistanceComputer,
    eh_result: EscapeHardnessResult,
    eh_threshold: float | None = None,
    max_extra_degree: int = 12,
    evict_strategy: str = "eh",
    rng: np.random.Generator | None = None,
) -> FixOutcome:
    """Run Algorithm 3 for one query.

    ``eh_result`` carries the query's NN ids and EH matrix; edges are added
    directly into ``adjacency`` as *extra* edges tagged with the EH value
    they fixed.
    """
    k = eh_result.k
    nn = eh_result.nn_ids[:k]
    S = eh_result.reachable(eh_threshold).copy()
    np.fill_diagonal(S, True)
    added: list[tuple[int, int]] = []
    evicted: list[tuple[int, int]] = []
    if bool(S.all()):
        return FixOutcome(added, evicted, True)

    # Candidate edges: all NN pairs, ascending by distance (Kruskal order).
    dist = pairwise_distances(dc.data[nn], dc.data[nn], dc.metric)
    iu, ju = np.triu_indices(k, k=1)
    order = np.argsort(dist[iu, ju], kind="stable")

    for idx in order:
        i, j = int(iu[idx]), int(ju[idx])
        if S[i, j] and S[j, i]:
            continue
        for a, b in ((i, j), (j, i)):
            if S[a, b]:
                continue
            u, v = int(nn[a]), int(nn[b])
            tag = _finite_eh(eh_result.eh[a, b], eh_result.K_max)
            if adjacency.add_extra_edge(u, v, tag):
                added.append((u, v))
                evicted.extend(enforce_extra_budget(
                    adjacency, dc, u, max_extra_degree, evict_strategy, rng))
            # Closure update (Algorithm 3 lines 17-19): anything reaching a
            # now reaches anything b reaches.
            S |= np.outer(S[:, a], S[b, :])
        if bool(S.all()):
            break

    return FixOutcome(added, evicted, bool(S.all()))


def rng_overlay_fix(
    adjacency: AdjacencyStore,
    dc: DistanceComputer,
    nn_ids: np.ndarray,
    max_extra_degree: int = 12,
) -> FixOutcome:
    """Fig. 7(a) baseline: rebuild an RNG over the query's NNs and overlay it.

    Produces high-quality local neighbors but many more edges than NGFix
    (the paper measures ~1.37x the out-degree), because it re-links every NN
    regardless of whether the existing graph already serves it.
    """
    nn = np.asarray(nn_ids, dtype=np.int64)
    dist = pairwise_distances(dc.data[nn], dc.data[nn], dc.metric)
    added: list[tuple[int, int]] = []
    k = nn.shape[0]
    for a in range(k):
        order = np.argsort(dist[a], kind="stable")
        kept: list[int] = []
        for b in order:
            b = int(b)
            if b == a:
                continue
            if any(dist[s, b] < dist[a, b] for s in kept):
                continue
            kept.append(b)
        for b in kept:
            u, v = int(nn[a]), int(nn[b])
            if adjacency.extra_degree(u) >= max_extra_degree:
                break
            if adjacency.add_extra_edge(u, v, _finite_eh(float("inf"), k)):
                added.append((u, v))
    return FixOutcome(added, [], True)


def random_connect_fix(
    adjacency: AdjacencyStore,
    dc: DistanceComputer,
    eh_result: EscapeHardnessResult,
    eh_threshold: float | None = None,
    max_extra_degree: int = 12,
    seed: int | np.random.Generator | None = 0,
) -> FixOutcome:
    """Fig. 7(b) baseline: random pairs until everything is ε-reachable.

    Fixes reachability but with disordered connections — nodes do not get
    their actual neighbors, which the paper shows performs worst.
    """
    rng = ensure_rng(seed)
    k = eh_result.k
    nn = eh_result.nn_ids[:k]
    S = eh_result.reachable(eh_threshold).copy()
    np.fill_diagonal(S, True)
    added: list[tuple[int, int]] = []
    missing = np.argwhere(~S)
    rng.shuffle(missing)
    for a, b in missing:
        a, b = int(a), int(b)
        if S[a, b]:
            continue
        u, v = int(nn[a]), int(nn[b])
        if adjacency.extra_degree(u) >= max_extra_degree:
            continue
        if adjacency.add_extra_edge(u, v, _finite_eh(eh_result.eh[a, b], eh_result.K_max)):
            added.append((u, v))
        S |= np.outer(S[:, a], S[b, :])
    return FixOutcome(added, [], bool(S.all()))
