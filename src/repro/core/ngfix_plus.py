"""NGFix+ — extending the guarantee to a ball around each query (Sec. 7).

NGFix certifies historical queries themselves.  The paper's proposed
extension aims at every test query within distance delta of a historical
query: enumerate perturbed copies q' with ||q' - q|| <= delta and apply
NGFix to each.  The paper's prototype randomly samples 100 perturbations per
query and observes better accuracy at ~19x the fixing cost; this module
reproduces that trade-off at configurable sample counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.escape_hardness import escape_hardness
from repro.core.fixer import NGFixer
from repro.core.ngfix import ngfix_query
from repro.evalx.ground_truth import compute_ground_truth
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


def perturb_within_ball(queries: np.ndarray, delta: float, n_samples: int,
                        seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Uniform samples from the delta-ball around each query.

    Output shape ``(n * n_samples, d)``; directions are uniform on the
    sphere, radii follow the r^(d-1) density so samples fill the ball.
    """
    queries = check_matrix(queries, "queries")
    check_positive(delta, "delta")
    check_positive(n_samples, "n_samples")
    rng = ensure_rng(seed)
    n, d = queries.shape
    directions = rng.standard_normal((n * n_samples, d)).astype(np.float32)
    directions /= np.maximum(np.linalg.norm(directions, axis=1, keepdims=True), 1e-12)
    radii = delta * rng.random(n * n_samples, dtype=np.float32) ** (1.0 / d)
    return np.repeat(queries, n_samples, axis=0) + radii[:, None] * directions


def ngfix_plus_query(
    fixer: NGFixer,
    query: np.ndarray,
    delta: float,
    n_samples: int = 20,
    seed: int | np.random.Generator | None = 0,
) -> int:
    """Apply NGFix to random perturbations of one historical query.

    Returns the number of extra edges added across all perturbations.  Uses
    exact preprocessing per perturbation (matching the paper's prototype,
    and the source of its ~19x cost over plain NGFix).
    """
    query = np.asarray(query, dtype=np.float32)
    perturbed = perturb_within_ball(query[None, :], delta, n_samples, seed)
    config = fixer.config
    K_max = config.k_max()
    gt = compute_ground_truth(fixer.dc.data, perturbed, K_max, fixer.dc.metric)
    added = 0
    for i in range(perturbed.shape[0]):
        eh = escape_hardness(fixer.adjacency.neighbors, gt.ids[i], config.k)
        outcome = ngfix_query(
            fixer.adjacency, fixer.dc, eh,
            eh_threshold=config.eh_threshold,
            max_extra_degree=config.max_extra_degree,
            evict_strategy=config.evict_strategy,
        )
        added += len(outcome.edges_added)
    return added
