"""Maintenance control plane: navigability signals + maintenance policies.

Splits maintenance *decisions* (when to merge, when to admit/skip/request
repairs, how big the repair budget is) from maintenance *execution* (the
single-writer :class:`~repro.serving.MaintenanceScheduler`).  See
``docs/architecture.md`` ("Maintenance control plane") for the state
machine and the serving/cluster wiring.
"""

from repro.control.policy import (
    POLICIES,
    CadencePolicy,
    MaintenancePolicy,
    SignalPolicy,
    make_policy,
)
from repro.control.signals import NavigabilitySignals, SignalSnapshot

__all__ = [
    "POLICIES",
    "CadencePolicy",
    "MaintenancePolicy",
    "NavigabilitySignals",
    "SignalPolicy",
    "SignalSnapshot",
    "make_policy",
]
