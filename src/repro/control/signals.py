"""Navigability signals: windowed graph-health scores from query traces.

The serving layer already measures how hard every query was — hops, NDC,
peak frontier size, and whether a deadline degraded the answer all ride on
:class:`~repro.obs.QueryTrace`.  This module folds those per-query records
(plus the serving state the scheduler can read directly: overlay depth and
tombstone density) into one *navigability score* a maintenance policy can
threshold: 0.0 means "searches behave like the calibrated baseline", and
the score grows as traversal work inflates past it.

Everything here is windowed and deterministic:

- per-query signals live in bounded deques (``window`` traces), so a
  long-running server's signal state is O(window), not O(traffic);
- the baseline is locked from the first ``baseline_traces`` traces after
  (re)calibration — the healthy reference the ratios compare against;
- storm detection counts *operations*, not wall-clock: a delete storm is
  ``storm_deletes`` deletions inside the last ``storm_window`` mutations,
  which makes chaos tests and replay reproducible.

:class:`NavigabilitySignals` takes no locks.  All writers (trace sink,
mutation hooks) are funneled through the scheduler, whose single-writer
discipline already serializes them; readers only consume the snapshot the
policy computes under the scheduler's decision points.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable

import numpy as np


@dataclasses.dataclass(slots=True)
class SignalSnapshot:
    """One windowed reading of the navigability signals.

    ``score`` is the composite health score (0.0 = at baseline, larger =
    worse); ``slope`` is its short-horizon change (positive = degrading).
    ``storm`` reports whether the mutation window currently qualifies as a
    delete storm.  ``n`` counts the traces the window holds — policies
    should ignore score/slope below their own minimum sample size.
    """

    n: int = 0
    hops_mean: float = 0.0
    ndc_mean: float = 0.0
    frontier_mean: float = 0.0
    degraded_rate: float = 0.0
    overlay_depth: int = 0
    tombstone_density: float = 0.0
    score: float = 0.0
    slope: float = 0.0
    storm: bool = False
    recent_deletes: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class NavigabilitySignals:
    """Sliding-window aggregator of per-query hardness + mutation pressure.

    Parameters
    ----------
    window:
        Traces retained for the score's means (the decision horizon).
    baseline_traces:
        Traces averaged into the healthy baseline before ratios activate.
        Until the baseline locks, the trace-ratio terms contribute 0 and
        the score is driven by degraded rate and tombstone density alone.
    storm_window, storm_deletes:
        A delete storm is ``storm_deletes`` deletions within the last
        ``storm_window`` mutations (inserts + deletes), measured in
        operation counts so detection is replay-deterministic.
    """

    def __init__(self, window: int = 128, baseline_traces: int = 32,
                 storm_window: int = 64, storm_deletes: int = 24):
        if window <= 0 or baseline_traces <= 0:
            raise ValueError("window and baseline_traces must be positive")
        if storm_window <= 0 or storm_deletes <= 0:
            raise ValueError("storm_window and storm_deletes must be positive")
        self.window = window
        self.baseline_traces = baseline_traces
        self.storm_window = storm_window
        self.storm_deletes = storm_deletes
        self._hops: deque[int] = deque(maxlen=window)
        self._ndc: deque[int] = deque(maxlen=window)
        self._frontier: deque[int] = deque(maxlen=window)
        self._degraded: deque[int] = deque(maxlen=window)
        # +1 per delete, 0 per insert — the storm detector's op window.
        self._mutations: deque[int] = deque(maxlen=storm_window)
        self._scores: deque[float] = deque(maxlen=8)  # slope horizon
        self.baseline_hops: float | None = None
        self.baseline_ndc: float | None = None
        self.n_traces = 0
        self.n_mutations = 0
        self.n_deletes = 0
        #: Bumped on every write; policies memoize snapshots against it.
        self.version = 0
        # Serving-state providers, wired by the policy at bind time; the
        # defaults keep the aggregator usable standalone (tests, offline
        # analysis of exported traces).
        self.overlay_depth_fn: Callable[[], int] = lambda: 0
        self.tombstone_density_fn: Callable[[], float] = lambda: 0.0

    # -- feeding ------------------------------------------------------------

    def observe_trace(self, trace) -> None:
        """Fold one :class:`~repro.obs.QueryTrace` (duck-typed) in."""
        self._hops.append(int(trace.n_hops))
        self._ndc.append(int(trace.ndc))
        self._frontier.append(int(trace.frontier_peak))
        self._degraded.append(1 if getattr(trace, "degraded", False) else 0)
        self.n_traces += 1
        self.version += 1
        if (self.baseline_hops is None
                and self.n_traces >= self.baseline_traces):
            self.calibrate()

    def note_mutation(self, kind: str, n: int = 1) -> None:
        """Record ``n`` mutations of ``kind`` ("insert"/"delete")."""
        is_delete = kind == "delete"
        for _ in range(max(int(n), 0)):
            self._mutations.append(1 if is_delete else 0)
        self.n_mutations += max(int(n), 0)
        if is_delete:
            self.n_deletes += max(int(n), 0)
        self.version += 1

    def calibrate(self) -> None:
        """Lock the current window means in as the healthy baseline."""
        if self._hops:
            self.baseline_hops = max(float(np.mean(self._hops)), 1.0)
            self.baseline_ndc = max(float(np.mean(self._ndc)), 1.0)

    # -- reading ------------------------------------------------------------

    @property
    def recent_deletes(self) -> int:
        """Deletes inside the last ``storm_window`` mutations."""
        return sum(self._mutations)

    @property
    def storm_detected(self) -> bool:
        return self.recent_deletes >= self.storm_deletes

    def hardness_prior(self, scale: float = 0.5) -> float:
        """The navigability score squashed into a [0, 1] hardness prior.

        The autotuner's query planner (:mod:`repro.tuning`) mixes this in
        as a workload-level prior: when searches are inflating past the
        calibrated baseline, even queries that *look* easy by history
        distance are planned one hardness bin up.  ``scale`` is the score
        at which the prior saturates to 1.0 — at the default 0.5 a
        sustained 25% degraded rate (score 0.5) or equivalent hops/NDC
        inflation maxes the prior out.  Reads the live window without
        advancing the slope horizon.
        """
        n = len(self._hops)
        degraded_rate = float(np.mean(self._degraded)) if n else 0.0
        score = 2.0 * degraded_rate + float(self.tombstone_density_fn())
        if self.baseline_hops is not None and n:
            score += max(0.0, float(np.mean(self._hops))
                         / self.baseline_hops - 1.0)
            score += max(0.0, float(np.mean(self._ndc))
                         / self.baseline_ndc - 1.0)
        return min(1.0, max(0.0, score / max(scale, 1e-9)))

    def snapshot(self) -> SignalSnapshot:
        """Compute the current windowed score (and advance the slope)."""
        n = len(self._hops)
        hops_mean = float(np.mean(self._hops)) if n else 0.0
        ndc_mean = float(np.mean(self._ndc)) if n else 0.0
        frontier_mean = float(np.mean(self._frontier)) if n else 0.0
        degraded_rate = float(np.mean(self._degraded)) if n else 0.0
        overlay_depth = int(self.overlay_depth_fn())
        tombstone_density = float(self.tombstone_density_fn())
        score = 2.0 * degraded_rate + tombstone_density
        if self.baseline_hops is not None and n:
            score += max(0.0, hops_mean / self.baseline_hops - 1.0)
            score += max(0.0, ndc_mean / self.baseline_ndc - 1.0)
        previous = float(np.mean(self._scores)) if self._scores else score
        self._scores.append(score)
        return SignalSnapshot(
            n=n,
            hops_mean=hops_mean,
            ndc_mean=ndc_mean,
            frontier_mean=frontier_mean,
            degraded_rate=degraded_rate,
            overlay_depth=overlay_depth,
            tombstone_density=tombstone_density,
            score=score,
            slope=score - previous,
            storm=self.storm_detected,
            recent_deletes=self.recent_deletes,
        )
