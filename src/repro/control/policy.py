"""Maintenance policies: who decides when the scheduler merges and repairs.

The :class:`~repro.serving.MaintenanceScheduler` *executes* maintenance —
single-writer, WAL-journaled, off the query path.  A
:class:`MaintenancePolicy` *decides* it.  The split matters because the
decision rules are the part worth experimenting with, while the execution
invariants (write serialization, journal order, epoch atomicity) must not
vary per experiment.

Two policies ship:

- :class:`CadencePolicy` — the pre-refactor behavior, bit for bit: merge
  once the overlay holds ``merge_every`` published ops, admit every
  ``observe()`` and drain the whole repair queue each pass.  It is the
  default; a scheduler constructed without an explicit policy behaves
  exactly as it always did.
- :class:`SignalPolicy` — navigability-driven: it consumes per-query
  traces through :class:`~repro.control.signals.NavigabilitySignals`,
  *skips* repair work while the graph looks healthy, and reacts to
  threshold/slope crossings and delete storms with burst repair of
  recently served queries plus an immediate epoch cut.  The repair budget
  scales with the condition (storm > degraded > healthy).

The policy state machine (see docs/architecture.md for the prose version)::

                    score/slope under thresholds
          +------------------ HEALTHY -------------------+
          | admit: no (skip)   merge: defer to overlay cap|
          |                                               |
   score>=threshold or                        storm_deletes deletes
   slope>=slope_threshold                     in storm_window mutations
          v                                               v
       DEGRADED  ----(storm detected)------------------> STORM
       admit: yes, budget=repair_budget       admit: yes, budget=storm_budget
       merge: at merge_every/2                merge: immediately
          |                                               |
          +---- score decays under threshold <--- burst drained + merged

Thread-safety: policy methods are only ever invoked from the scheduler's
decision points (``observe``/``note_mutations``/``run_pending``/
``merge_now``) or from the trace sink, all of which the scheduler already
serializes for mutation purposes; the policy keeps no locks of its own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.control.signals import NavigabilitySignals, SignalSnapshot
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serving import MaintenanceScheduler

_POLICY_SCORE = OBS.gauge(
    "maintenance_policy_score",
    "latest windowed navigability score (0 = at baseline)")
_POLICY_TRIGGERS = OBS.counter(
    "maintenance_policy_triggers",
    "threshold/slope crossings that switched the policy to DEGRADED")
_POLICY_SKIPPED = OBS.counter(
    "maintenance_policy_repairs_skipped",
    "observe() repairs skipped because the graph looked healthy")
_POLICY_STORMS = OBS.counter(
    "maintenance_policy_storms", "delete storms detected by the policy")
_POLICY_REQUESTED = OBS.counter(
    "maintenance_policy_repairs_requested",
    "burst repairs the policy requested from the recent-query ring")
_POLICY_DEFERRED = OBS.counter(
    "maintenance_policy_deferred_merges",
    "cadence-due merges the policy deferred while the graph was healthy")


class MaintenancePolicy:
    """Decision interface the scheduler consults at its trigger points.

    Subclasses override the ``should_merge``/budget/admission hooks; the
    scheduler guarantees they are called from serialized contexts only.
    ``wants_traces`` opts the policy into the searcher's trace feed (and
    the scheduler's recent-query ring); trace-blind policies pay zero
    per-query overhead.
    """

    name = "base"
    #: Whether the serving searcher should feed per-query traces (and the
    #: scheduler keep a recent-query ring) for this policy.
    wants_traces = False

    def __init__(self) -> None:
        self.scheduler: "MaintenanceScheduler | None" = None

    def bind(self, scheduler: "MaintenanceScheduler") -> None:
        """Attach to the owning scheduler (called from its constructor)."""
        self.scheduler = scheduler

    # -- inputs -------------------------------------------------------------

    def on_trace(self, trace) -> None:
        """One served query's trace (only called when ``wants_traces``)."""

    def note_mutation(self, kind: str, n: int = 1) -> None:
        """``n`` mutations of ``kind`` ("insert"/"delete") just committed."""

    def on_merge(self) -> None:
        """An epoch cut just committed (merge or bulk boundary)."""

    # -- decisions ----------------------------------------------------------

    def should_merge(self, overlay_ops: int) -> bool:
        """Whether the scheduler should cut a fresh epoch now."""
        raise NotImplementedError

    def admit_repair(self) -> bool:
        """Whether an ``observe()`` repair request should be queued."""
        return True

    def repair_budget(self) -> int | None:
        """Repairs one unconstrained drain may run (None = drain all)."""
        return None

    def mutation_repair_budget(self) -> int:
        """Repairs a mutation-triggered drain may run (0 = merge only)."""
        return 0

    def claim_repair_requests(self) -> int:
        """Recent queries the scheduler should self-enqueue for repair.

        Consumed (reset) by the call: the scheduler invokes this once per
        drain and pulls that many queries off its recent-query ring.
        """
        return 0

    def stats(self) -> dict:
        return {"policy": self.name}


class CadencePolicy(MaintenancePolicy):
    """Fixed-cadence maintenance — the scheduler's historical behavior.

    Merge exactly when the overlay reaches ``merge_every`` published ops,
    admit every repair request, drain the whole queue every pass, never
    self-enqueue work.  Decision-for-decision identical to the
    pre-policy scheduler, which the bit-equivalence suite in
    ``tests/test_control.py`` pins down.
    """

    name = "cadence"

    def __init__(self, merge_every: int = 256):
        super().__init__()
        if merge_every <= 0:
            raise ValueError(
                f"merge_every must be positive, got {merge_every}")
        self.merge_every = merge_every

    def should_merge(self, overlay_ops: int) -> bool:
        return overlay_ops >= self.merge_every

    def stats(self) -> dict:
        return {"policy": self.name, "merge_every": self.merge_every}


class SignalPolicy(MaintenancePolicy):
    """Navigability-triggered maintenance: repair when signals demand it.

    Parameters
    ----------
    merge_every:
        The cadence reference.  Healthy, the policy lets the overlay grow
        to ``merge_every * max_overlay_factor`` before merging (deferral
        is counted); DEGRADED it merges at ``merge_every // 2``; a STORM
        merges immediately (folding the burst's tombstones into a fresh
        epoch CSR).
    score_threshold, slope_threshold, degraded_threshold:
        DEGRADED entry conditions on the windowed score, its short-horizon
        slope, and the deadline-degraded rate respectively.
    min_traces:
        Minimum window fill before score/slope triggers are trusted.
    repair_budget_degraded, storm_repair_budget:
        Repair budget scaling: per-drain cap while DEGRADED, and the size
        of the one-shot burst (recent served queries re-fixed) a storm
        requests.
    signals:
        An externally configured :class:`NavigabilitySignals`; by default
        one is built with ``storm_deletes``/``storm_window``.
    """

    name = "signal"
    wants_traces = True

    def __init__(self, merge_every: int = 256, *,
                 signals: NavigabilitySignals | None = None,
                 score_threshold: float = 0.25,
                 slope_threshold: float = 0.15,
                 degraded_threshold: float = 0.05,
                 min_traces: int = 16,
                 max_overlay_factor: int = 4,
                 repair_budget_degraded: int = 4,
                 storm_repair_budget: int = 32,
                 storm_deletes: int = 24,
                 storm_window: int = 64,
                 trigger_cooldown: int = 32):
        super().__init__()
        if merge_every <= 0:
            raise ValueError(
                f"merge_every must be positive, got {merge_every}")
        if max_overlay_factor < 1:
            raise ValueError(
                f"max_overlay_factor must be >= 1, got {max_overlay_factor}")
        self.merge_every = merge_every
        self.signals = signals or NavigabilitySignals(
            storm_deletes=storm_deletes, storm_window=storm_window)
        self.score_threshold = score_threshold
        self.slope_threshold = slope_threshold
        self.degraded_threshold = degraded_threshold
        self.min_traces = min_traces
        self.max_overlay_factor = max_overlay_factor
        self.repair_budget_degraded = repair_budget_degraded
        self.storm_repair_budget = storm_repair_budget
        self.trigger_cooldown = trigger_cooldown
        # State machine bookkeeping.
        self._storm_latched = False     # current mutation window is a storm
        self._merge_pending = False     # storm demanded an immediate cut
        self._burst_owed = 0            # ring repairs owed to the storm
        self._trigger_owed = 0          # ring repairs owed to a threshold hit
        self._cooldown_until = 0        # trace count gating the next trigger
        self._last_overlay_ops = 0      # deferral edge detection
        self._snapshot: SignalSnapshot | None = None
        self._snapshot_version = -1
        # Counters surfaced by stats() (and mirrored to OBS).
        self.n_triggers = 0
        self.n_storms = 0
        self.n_skipped = 0
        self.n_requested = 0
        self.n_deferred = 0

    def bind(self, scheduler: "MaintenanceScheduler") -> None:
        super().bind(scheduler)
        fixer = scheduler.fixer
        manager = scheduler.manager

        def overlay_depth() -> int:
            overlay = manager.overlay
            return overlay.n_ops if overlay is not None else 0

        def tombstone_density() -> float:
            size = fixer.dc.size
            if not size:
                return 0.0
            return len(fixer.adjacency.tombstones) / size

        self.signals.overlay_depth_fn = overlay_depth
        self.signals.tombstone_density_fn = tombstone_density

    # -- inputs -------------------------------------------------------------

    def on_trace(self, trace) -> None:
        self.signals.observe_trace(trace)

    def note_mutation(self, kind: str, n: int = 1) -> None:
        self.signals.note_mutation(kind, n)
        if self.signals.storm_detected:
            # Only a delete can start a storm (detection counts deletes),
            # and one storm = one burst + one immediate cut (rising edge).
            if kind == "delete" and not self._storm_latched:
                self._storm_latched = True
                self._merge_pending = True
                self._burst_owed = self.storm_repair_budget
                self.n_storms += 1
                _POLICY_STORMS.inc()
        else:
            # Any mutation may drain the op window below the threshold —
            # inserts included — and must re-arm detection when it does.
            self._storm_latched = False

    def on_merge(self) -> None:
        self._merge_pending = False
        self._last_overlay_ops = 0

    # -- internal -----------------------------------------------------------

    def _current(self) -> SignalSnapshot:
        """The window's snapshot, memoized against the signals version."""
        if self._snapshot_version != self.signals.version:
            self._snapshot = self.signals.snapshot()
            self._snapshot_version = self.signals.version
            _POLICY_SCORE.set(self._snapshot.score)
            if self._triggered(self._snapshot):
                if self.signals.n_traces >= self._cooldown_until:
                    self._cooldown_until = (self.signals.n_traces
                                            + self.trigger_cooldown)
                    self._trigger_owed = self.repair_budget_degraded
                    self.n_triggers += 1
                    _POLICY_TRIGGERS.inc()
        return self._snapshot

    def _triggered(self, snap: SignalSnapshot) -> bool:
        if snap.n < self.min_traces:
            return False
        return (snap.score >= self.score_threshold
                or snap.slope >= self.slope_threshold
                or snap.degraded_rate >= self.degraded_threshold)

    @property
    def storming(self) -> bool:
        """Whether the policy is currently reacting to a delete storm."""
        return self._storm_latched or self._merge_pending or self._burst_owed > 0

    # -- decisions ----------------------------------------------------------

    def should_merge(self, overlay_ops: int) -> bool:
        if overlay_ops <= 0:
            return False
        if self._merge_pending:
            return True
        if overlay_ops >= self.merge_every * self.max_overlay_factor:
            return True  # bound overlay memory/lookup cost regardless
        degraded = self._triggered(self._current())
        if degraded and overlay_ops >= max(1, self.merge_every // 2):
            return True
        # Count each cadence-due point we sail past while healthy (edge-
        # triggered on the crossing, not per poll).
        if (overlay_ops >= self.merge_every
                and self._last_overlay_ops < self.merge_every):
            self.n_deferred += 1
            _POLICY_DEFERRED.inc()
        self._last_overlay_ops = overlay_ops
        return False

    def admit_repair(self) -> bool:
        if self.storming or self._triggered(self._current()):
            return True
        self.n_skipped += 1
        _POLICY_SKIPPED.inc()
        return False

    def repair_budget(self) -> int | None:
        if self.storming:
            return None  # drain the whole burst
        if self._triggered(self._current()):
            return self.repair_budget_degraded
        return None  # anything queued was deliberately admitted; finish it

    def mutation_repair_budget(self) -> int:
        if self.storming:
            return self.storm_repair_budget
        if self._triggered(self._current()):
            return self.repair_budget_degraded
        return 0

    def claim_repair_requests(self) -> int:
        owed = self._burst_owed + self._trigger_owed
        self._burst_owed = 0
        self._trigger_owed = 0
        if owed:
            self.n_requested += owed
            _POLICY_REQUESTED.inc(owed)
        return owed

    def stats(self) -> dict:
        snap = self._current()
        return {
            "policy": self.name,
            "merge_every": self.merge_every,
            # Score-like gauges merge by max across shards (worst shard is
            # the cluster's health) — see repro.cluster.stats.MAX_KEYS.
            "signal_score": snap.score,
            "signal_slope": snap.slope,
            "signal_traces": self.signals.n_traces,
            "degraded_rate": snap.degraded_rate,
            "tombstone_density": snap.tombstone_density,
            # 0/1 int (not bool) so the cluster rollup sums shards in storm
            # instead of AND-ing them.
            "storm_active": int(self.storming),
            "storm_detections": self.n_storms,
            "triggers_fired": self.n_triggers,
            "repairs_skipped": self.n_skipped,
            "repairs_requested": self.n_requested,
            "deferred_merges": self.n_deferred,
        }


#: Registry for string-configured policy selection (store/CLI/cluster spec).
POLICIES = {"cadence": CadencePolicy, "signal": SignalPolicy}


def make_policy(spec, merge_every: int,
                config: dict | None = None) -> MaintenancePolicy | None:
    """Build a policy from a spec: None, a name, or a ready instance.

    ``None`` returns None (the scheduler installs its own default
    :class:`CadencePolicy`, preserving the historical default path
    exactly); a string looks up :data:`POLICIES` and forwards ``config``
    as keyword arguments; an instance passes through unchanged.
    """
    if spec is None:
        if config:
            raise ValueError("policy_config requires an explicit policy")
        return None
    if isinstance(spec, MaintenancePolicy):
        if config:
            raise ValueError(
                "policy_config cannot be combined with a policy instance")
        return spec
    try:
        cls = POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown policy {spec!r}; expected one of "
            f"{sorted(POLICIES)} or a MaintenancePolicy instance") from None
    return cls(merge_every, **(config or {}))
