"""Trace-driven autotuning + hardness-aware query planning (ROADMAP item 4).

Three pieces close the loop from telemetry to parameters:

- :class:`TunedConfig` (:mod:`repro.tuning.config`) — the JSON-serializable
  per-hardness-bin parameter table (``ef``/``beam_width``/``rerank``/route
  plus the landmark set defining the hardness measure).  Rides in
  ``store-config.json`` and the cluster's worker specs.
- :func:`fit_tuned_config` (:mod:`repro.tuning.tuner`) — replays a
  calibration workload (optionally seeded by a recorded TraceLog) through
  the target searcher, measures per-(bin, ef) recall/cost, and solves for
  the cheapest assignment meeting the recall target.  The ``repro tune``
  subcommand wraps it.
- :class:`HardnessPlanner` (:mod:`repro.tuning.planner`) — the serving-time
  consumer: predicts each query's bin from landmark distance plus the
  control plane's navigability prior, partitions batches by bin, and picks
  adaptive entry points per block.
"""

from repro.tuning.config import BinSetting, TunedConfig, coerce_tuned_config
from repro.tuning.planner import HardnessPlanner
from repro.tuning.tuner import (fit_landmarks, fit_tuned_config,
                                replay_traces, suggest_ef_grid)

__all__ = [
    "BinSetting",
    "TunedConfig",
    "coerce_tuned_config",
    "HardnessPlanner",
    "fit_landmarks",
    "fit_tuned_config",
    "replay_traces",
    "suggest_ef_grid",
]
