"""Tuned serving configuration: per-hardness-bin search parameters.

A :class:`TunedConfig` is the artifact the trace-replay tuner emits and the
serving stack consumes: hardness bin edges (history-distance quantiles), a
small landmark set that *defines* the hardness measure at serving time, and
one :class:`BinSetting` per bin carrying the fitted ``ef``/``beam_width``/
``rerank``/route.  It round-trips through JSON (``save``/``load``), rides
in ``store-config.json`` so recovery restores it, and ships through the
cluster router's worker specs so every shard plans with the same table.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

#: Route names a bin may carry: "default" keeps the store's native path
#: (compressed stores stay on the ADC hot path), "pq" forces the compressed
#: path, "exact" forces full-precision traversal (hard/OOD queries must not
#: pay quantization error on top of their already-long walks).
ROUTES = ("default", "pq", "exact")


@dataclasses.dataclass
class BinSetting:
    """Search parameters for one hardness bin."""

    ef: int
    beam_width: int | None = None
    rerank: int | None = None
    route: str = "default"

    def __post_init__(self):
        self.ef = int(self.ef)
        if self.ef <= 0:
            raise ValueError(f"ef must be positive, got {self.ef}")
        if self.beam_width is not None and int(self.beam_width) <= 0:
            raise ValueError(
                f"beam_width must be positive, got {self.beam_width}")
        if self.rerank is not None and int(self.rerank) <= 0:
            raise ValueError(f"rerank must be positive, got {self.rerank}")
        if self.route not in ROUTES:
            raise ValueError(
                f"route must be one of {ROUTES}, got {self.route!r}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class TunedConfig:
    """A fitted per-hardness-bin parameter table (see :mod:`repro.tuning`).

    Attributes
    ----------
    k, target_recall:
        What the table was fitted for; consumers may serve other ``k`` but
        the recall contract only covers the fitted one.
    edges:
        ``n_bins - 1`` ascending hardness edges.  A query's bin is
        ``np.digitize(hardness, edges)``; hardness is the distance to the
        nearest landmark.
    bins:
        One :class:`BinSetting` per bin, index 0 = easiest.
    landmarks:
        The (n_landmarks, dim) float32 centroid set that defines the
        hardness measure.  Fitted from the calibration workload; the
        serving planner keeps adapting it from observed queries.
    default_ef:
        The single global ef the tuner would have hand-set (smallest grid
        ef meeting the target on the calibration mix) — the untuned
        baseline, kept for reporting and as the fallback when a consumer
        cannot plan (e.g. empty landmark set).
    score_shift:
        Navigability-prior threshold: when the control plane's hardness
        prior (:meth:`repro.control.NavigabilitySignals.hardness_prior`)
        meets it, predicted bins shift one step harder.
    metric:
        Distance metric name the landmarks/hardness were computed under.
    meta:
        Free-form provenance (dataset, grid, recall table, timestamps).
    """

    k: int
    target_recall: float
    edges: list[float]
    bins: list[BinSetting]
    landmarks: list[list[float]]
    default_ef: int
    score_shift: float = 0.6
    metric: str = "cosine"
    meta: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        self.k = int(self.k)
        self.default_ef = int(self.default_ef)
        self.bins = [b if isinstance(b, BinSetting) else BinSetting(**b)
                     for b in self.bins]
        self.edges = [float(e) for e in self.edges]
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not self.bins:
            raise ValueError("bins must be non-empty")
        if len(self.edges) != len(self.bins) - 1:
            raise ValueError(
                f"{len(self.bins)} bins need {len(self.bins) - 1} edges, "
                f"got {len(self.edges)}")
        if any(b > a for b, a in zip(self.edges, self.edges[1:])):
            raise ValueError(f"edges must be ascending, got {self.edges}")
        if self.default_ef <= 0:
            raise ValueError(
                f"default_ef must be positive, got {self.default_ef}")

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    def landmark_matrix(self) -> np.ndarray:
        return np.asarray(self.landmarks, dtype=np.float32)

    def setting(self, b: int) -> BinSetting:
        """The bin's settings, clamped into range."""
        return self.bins[min(max(int(b), 0), len(self.bins) - 1)]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "target_recall": self.target_recall,
            "edges": self.edges,
            "bins": [b.to_dict() for b in self.bins],
            "landmarks": [[float(x) for x in row] for row in self.landmarks],
            "default_ef": self.default_ef,
            "score_shift": self.score_shift,
            "metric": self.metric,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TunedConfig":
        kwargs = {key: data[key] for key in (
            "k", "target_recall", "edges", "bins", "landmarks", "default_ef")}
        for key in ("score_shift", "metric", "meta"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TunedConfig":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def coerce_tuned_config(value) -> TunedConfig | None:
    """Accept a TunedConfig, a dict, or a JSON file path (None passes)."""
    if value is None or isinstance(value, TunedConfig):
        return value
    if isinstance(value, dict):
        return TunedConfig.from_dict(value)
    if isinstance(value, (str, pathlib.Path)):
        return TunedConfig.load(value)
    raise TypeError(
        f"tuned_config must be a TunedConfig, dict, or path, "
        f"got {type(value).__name__}")
