"""Hardness-aware query planner: predict a bin, pick the path, seed entries.

The planner is the serving-time half of the autotuner.  Per query (or per
batched block) it:

1. **Predicts hardness** — distance to the nearest landmark of the tuned
   config's centroid set (the same measure the tuner binned calibration
   queries by), digitized against the config's edges.  The control plane's
   navigability score joins as a workload-level prior: when the graph is
   measurably degraded, every prediction shifts one bin harder.
2. **Routes** — each bin carries an ``ef``/``beam_width``/``rerank``/route
   from the fitted table; the serving searcher partitions a batch by
   predicted bin and runs each group with its own engine settings
   (per-block partitioning, never per-query fallback).
3. **Adapts entry points** — the landmark set keeps drifting toward
   observed traffic (one streaming k-means step per planned batch), and
   each landmark lazily resolves to its nearest graph node, which seeds the
   block's beam alongside the epoch entry (adaptive entry point selection).

Prediction cost is one (block, n_landmarks) distance matrix — vectorized,
a few microseconds against the default 16 landmarks — so planning never
competes with traversal for the budget it is trying to save.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.obs import OBS
from repro.tuning.config import BinSetting, TunedConfig

_PLANNED = OBS.counter(
    "tuning_planned_queries", "queries routed by the hardness planner")
_ROUTED_EASY = OBS.counter(
    "tuning_routed_easy", "queries planned into the easiest hardness bin")
_ROUTED_HARD = OBS.counter(
    "tuning_routed_hard", "queries planned into the hardest hardness bin")
_SHIFTED = OBS.counter(
    "tuning_prior_shifts",
    "queries shifted one bin harder by the navigability prior")
_CONFUSED = OBS.counter(
    "tuning_hardness_confusion",
    "planned queries whose observed hop count disagreed with the "
    "predicted easy/hard side (see HardnessPlanner.stats)")
_BIN_OCCUPANCY = OBS.histogram(
    "tuning_bin_occupancy", "predicted hardness bin per planned query",
    buckets=[0.5, 1.5, 2.5, 3.5, 4.5])


class HardnessPlanner:
    """Serving-time hardness prediction + routing from a :class:`TunedConfig`.

    Parameters
    ----------
    config:
        The fitted table (edges, landmarks, per-bin settings).
    score_fn:
        Optional zero-arg callable returning the control plane's hardness
        prior in [0, 1] (:meth:`NavigabilitySignals.hardness_prior
        <repro.control.NavigabilitySignals.hardness_prior>`).  At or above
        ``config.score_shift`` every prediction shifts one bin harder.
    locate_fn:
        Optional callable ``(vector) -> node_id | None`` resolving a
        landmark centroid to its nearest graph node; wired by the store so
        landmark entries always come from the live index.
    adapt:
        When True (default) planned queries drift the landmark set with a
        streaming k-means step (rate ``adapt_rate``); entry resolutions are
        invalidated as their landmark moves.
    """

    def __init__(self, config: TunedConfig, score_fn=None, locate_fn=None,
                 adapt: bool = True, adapt_rate: float = 0.05,
                 reresolve_drift: float = 0.1):
        self.config = config
        self.metric = Metric.parse(config.metric)
        self.score_fn = score_fn
        self.locate_fn = locate_fn
        self.adapt = adapt
        self.adapt_rate = float(adapt_rate)
        # Entry re-resolution is a graph search (locate_fn) — charge it
        # only when a landmark has drifted this fraction of its own norm
        # since the last resolve, not on every streaming update.
        self.reresolve_drift = float(reresolve_drift)
        self._landmarks = np.ascontiguousarray(
            config.landmark_matrix(), dtype=np.float32)
        self._edges = np.asarray(config.edges, dtype=np.float64)
        self._entry_ids: list[int | None] = [None] * len(self._landmarks)
        self._drift = np.zeros(len(self._landmarks), dtype=np.float64)
        # Landmark drift happens on the query path (under the searcher's
        # callers' threads); one small lock keeps the centroid matrix and
        # its entry cache coherent without touching the search engines.
        self._lock = threading.Lock()
        self.n_planned = 0
        self.n_shifted = 0
        self.n_adapted = 0
        # Predicted-vs-observed hardness confusion: rows = predicted
        # easy/hard side, cols = observed easy/hard side (observed = hop
        # count vs the running median of planned traffic).
        self.confusion = np.zeros((2, 2), dtype=np.int64)
        self._hops_window: list[int] = []

    @property
    def n_bins(self) -> int:
        return self.config.n_bins

    # -- prediction ----------------------------------------------------------

    def hardness(self, queries: np.ndarray) -> np.ndarray:
        """Distance from each query to its nearest landmark."""
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if not len(self._landmarks):
            return np.zeros(qmat.shape[0], dtype=np.float64)
        with self._lock:
            landmarks = self._landmarks
        return pairwise_distances(qmat, landmarks, self.metric).min(axis=1)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predicted hardness bin per query (prior shift applied)."""
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        bins = np.digitize(self.hardness(qmat), self._edges)
        shifted = False
        if self.score_fn is not None and self.n_bins > 1:
            if float(self.score_fn()) >= self.config.score_shift:
                bins = np.minimum(bins + 1, self.n_bins - 1)
                shifted = True
        n = int(qmat.shape[0])
        self.n_planned += n
        if shifted:
            self.n_shifted += n
        if OBS.enabled:
            _PLANNED.inc(n)
            if shifted:
                _SHIFTED.inc(n)
            _ROUTED_EASY.inc(int(np.count_nonzero(bins == 0)))
            _ROUTED_HARD.inc(int(np.count_nonzero(bins == self.n_bins - 1)))
            for b in bins.tolist():
                _BIN_OCCUPANCY.observe(b)
        return bins

    def plan(self, queries: np.ndarray
             ) -> tuple[np.ndarray, list[tuple[int, np.ndarray, BinSetting]]]:
        """Partition a batch by predicted bin.

        Returns ``(bins, groups)`` where ``groups`` is ``(bin, indices,
        setting)`` triples in ascending bin order; indices are positions
        into the original batch, so results regroup into caller order
        afterwards.  Bins whose fitted settings are identical coalesce
        into one group — the lock-step engine pays per-block round costs,
        so splitting a batch between bins that would run the exact same
        search is pure overhead.  Also advances landmark adaptation.
        """
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        bins = self.predict(qmat)
        groups = []
        for b in range(self.n_bins):
            idx = np.flatnonzero(bins == b)
            if not idx.size:
                continue
            setting = self.config.setting(b)
            if groups and groups[-1][2] == setting:
                prev_b, prev_idx, _ = groups[-1]
                groups[-1] = (prev_b, np.concatenate([prev_idx, idx]),
                              setting)
            else:
                groups.append((b, idx, setting))
        if self.adapt:
            self.observe(qmat)
        return bins, groups

    # -- adaptation ----------------------------------------------------------

    def observe(self, queries: np.ndarray) -> None:
        """One streaming k-means step: drift landmarks toward the traffic."""
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if not len(self._landmarks) or not qmat.shape[0]:
            return
        with self._lock:
            nearest = pairwise_distances(
                qmat, self._landmarks, self.metric).argmin(axis=1)
            for j in np.unique(nearest).tolist():
                members = qmat[nearest == j]
                step = self.adapt_rate * (
                    members.mean(axis=0) - self._landmarks[j])
                self._landmarks[j] += step
                self._drift[j] += float(np.linalg.norm(step))
                # Invalidate the cached entry node only once the landmark
                # has moved materially — each re-resolve costs a search.
                scale = max(float(np.linalg.norm(self._landmarks[j])), 1e-9)
                if (self._entry_ids[j] is not None
                        and self._drift[j] > self.reresolve_drift * scale):
                    self._entry_ids[j] = None
                    self._drift[j] = 0.0
            self.n_adapted += qmat.shape[0]

    # -- adaptive entry points ----------------------------------------------

    def entry_for_block(self, queries: np.ndarray,
                        n_nodes: int | None = None,
                        excluded=None) -> int | None:
        """The nearest landmark's graph node for a block of queries.

        The block centroid picks the landmark; the landmark's node id is
        resolved lazily through ``locate_fn`` and cached until the landmark
        drifts.  Returns None when no usable entry exists (caller keeps the
        epoch entry).
        """
        if self.locate_fn is None or not len(self._landmarks):
            return None
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        centroid = qmat.mean(axis=0, keepdims=True).astype(np.float32)
        with self._lock:
            j = int(pairwise_distances(
                centroid, self._landmarks, self.metric).argmin())
            entry = self._entry_ids[j]
            landmark = self._landmarks[j].copy()
        if entry is None:
            entry = self.locate_fn(landmark)
            if entry is None:
                return None
            entry = int(entry)
            with self._lock:
                self._entry_ids[j] = entry
                self._drift[j] = 0.0
        if n_nodes is not None and entry >= n_nodes:
            return None  # beyond this epoch's horizon
        if excluded is not None and entry in excluded:
            return None
        return entry

    # -- feedback ------------------------------------------------------------

    def note_outcomes(self, bins: np.ndarray, results) -> None:
        """Fold observed hardness back into the confusion table.

        Observed hardness is the result's hop count against the running
        median of planned traffic — cheap, self-calibrating, and available
        on every path (hops ride on every :class:`SearchResult`).
        """
        hops = [int(getattr(r, "n_hops", 0)) for r in results]
        if not hops:
            return
        self._hops_window.extend(hops)
        if len(self._hops_window) > 512:
            self._hops_window = self._hops_window[-256:]
        threshold = float(np.median(self._hops_window))
        hard_bin = self.n_bins - 1
        confused = 0
        for b, h in zip(np.asarray(bins).tolist(), hops):
            predicted_hard = 1 if b >= max(hard_bin, 1) else 0
            observed_hard = 1 if h > threshold else 0
            self.confusion[predicted_hard, observed_hard] += 1
            if predicted_hard != observed_hard:
                confused += 1
        if confused and OBS.enabled:
            _CONFUSED.inc(confused)

    def stats(self) -> dict:
        return {
            "n_bins": self.n_bins,
            "n_landmarks": len(self._landmarks),
            "planned": self.n_planned,
            "prior_shifted": self.n_shifted,
            "adapted": self.n_adapted,
            "resolved_entries": sum(
                1 for e in self._entry_ids if e is not None),
            "confusion": self.confusion.tolist(),
        }
