"""Trace-replay tuner: fit per-hardness-bin search parameters from live
recall/NDC estimates.

The tuner closes the telemetry loop (ROADMAP item 4): given a calibration
query set (a recorded query file, or the workload a TraceLog summarized),
it

1. fits a small **landmark set** (streaming-k-means centroids) that defines
   the serving-time hardness measure — distance to the nearest landmark —
   and bins the calibration queries by its quantiles;
2. **measures** recall and distance-computation cost per (bin, ef) cell by
   replaying the bin's queries through the target searcher (batched; the
   same engines serving uses), scoring against exact ground truth when
   provided and a strong reference search otherwise (*live* recall
   estimates — no offline GT required, the SISAP off-the-shelf recipe);
3. **solves** for the cheapest ef per bin under a per-bin recall floor
   (never below the single-ef baseline's measured recall in that bin, and
   up to the target where the baseline undershoots) — so the fitted table
   is no worse than the "hand-set default" single ef, which is computed
   from the same table and kept as the baseline;
4. optionally refines the hardest bin's **route** (exact instead of PQ on
   compressed stores) and the easy bins' **rerank** budget by re-measuring
   variants at the chosen ef.

A recorded TraceLog (``repro stats --traces`` output) can seed the grid:
:func:`replay_traces` summarizes the efs and NDC the workload actually ran
with, and :func:`suggest_ef_grid` centers the search there.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.evalx.metrics import recall_per_query
from repro.tuning.config import BinSetting, TunedConfig

#: Rough cost of one ADC table lookup relative to one full-precision
#: distance: a lookup touches m uint8 codes instead of dim floats.
ADC_COST_WEIGHT = 0.25


# -- trace replay ------------------------------------------------------------

def replay_traces(traces) -> dict:
    """Summarize a recorded TraceLog (list of trace dicts or a JSON path).

    Returns the workload's observed operating envelope — the efs it ran
    with, per-query NDC, hop counts, and degraded rate — which seeds the
    tuner's grid and rides into the emitted config's provenance.
    """
    if isinstance(traces, (str, pathlib.Path)):
        traces = json.loads(pathlib.Path(traces).read_text())
    efs = [int(t.get("ef", 0)) for t in traces if t.get("ef")]
    ndc = [int(t.get("ndc", 0)) for t in traces]
    hops = [int(t.get("n_hops", 0)) for t in traces]
    degraded = [1 if t.get("degraded") else 0 for t in traces]
    ks = [int(t.get("k", 0)) for t in traces if t.get("k")]
    return {
        "n_traces": len(traces),
        "k_mode": int(np.bincount(ks).argmax()) if ks else 0,
        "ef_min": min(efs) if efs else 0,
        "ef_max": max(efs) if efs else 0,
        "ef_mean": float(np.mean(efs)) if efs else 0.0,
        "ndc_mean": float(np.mean(ndc)) if ndc else 0.0,
        "hops_mean": float(np.mean(hops)) if hops else 0.0,
        "degraded_rate": float(np.mean(degraded)) if degraded else 0.0,
    }


def suggest_ef_grid(k: int, trace_stats: dict | None = None) -> list[int]:
    """An ef grid centered on what the recorded workload actually ran.

    Without traces: the classic doubling ladder from ``k``.  With traces:
    the ladder is anchored at the observed mean ef so the search spends its
    measurements around the operating point instead of from scratch.
    """
    if trace_stats and trace_stats.get("ef_mean"):
        anchor = max(int(trace_stats["ef_mean"]), k)
        grid = {max(k, anchor // 4), max(k, anchor // 2),
                max(k, (3 * anchor) // 4), anchor, (3 * anchor) // 2,
                anchor * 2, anchor * 4}
    else:
        # Half-octave steps: per-bin savings usually hide between the
        # doubling points (ef 20 meets target, 10 misses, 14 is the win).
        grid = {k, (3 * k) // 2, 2 * k, 3 * k, 4 * k, 6 * k, 8 * k, 16 * k}
    return sorted(grid)


# -- landmark fitting --------------------------------------------------------

def fit_landmarks(queries: np.ndarray, n_landmarks: int = 16,
                  metric: Metric | str = Metric.COSINE, seed: int = 0,
                  iters: int = 8) -> np.ndarray:
    """Small Lloyd's k-means over the calibration queries.

    The centroids define the hardness measure (distance to nearest
    landmark) used identically at fit time and at serving time; empty
    clusters reseed to the farthest query so the set never collapses.
    """
    metric = Metric.parse(metric)
    qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    n = qmat.shape[0]
    n_landmarks = max(1, min(int(n_landmarks), n))
    rng = np.random.default_rng(seed)
    centers = qmat[rng.choice(n, size=n_landmarks, replace=False)].copy()
    for _ in range(max(int(iters), 1)):
        dists = pairwise_distances(qmat, centers, metric)
        nearest = dists.argmin(axis=1)
        for j in range(n_landmarks):
            members = qmat[nearest == j]
            if members.shape[0]:
                centers[j] = members.mean(axis=0)
            else:
                centers[j] = qmat[int(dists.min(axis=1).argmax())]
    return np.ascontiguousarray(centers, dtype=np.float32)


def _crossfit_hardness(qmat: np.ndarray, landmarks: np.ndarray,
                       n_landmarks: int, metric: Metric,
                       seed: int) -> np.ndarray:
    """Calibration hardness scored against *out-of-fold* landmarks.

    Landmarks fitted on the calibration queries make those same queries
    look artificially easy (each pulls its own centroid toward itself), so
    quantile edges cut on in-fold hardness push fresh traffic of the same
    distribution almost entirely into the hardest bin.  Scoring each half
    against landmarks fitted on the other half measures the distance a
    previously-unseen query would see; the edges generalize, while the
    full-fit landmark set still ships as the serving-time measure.
    """
    n = qmat.shape[0]
    if n < 8:
        return pairwise_distances(qmat, landmarks, metric).min(axis=1)
    fold = np.zeros(n, dtype=bool)
    fold[np.random.default_rng(seed).permutation(n)[:n // 2]] = True
    hardness = np.empty(n, dtype=np.float64)
    for mask in (fold, ~fold):
        held_out = fit_landmarks(qmat[~mask], n_landmarks, metric, seed)
        hardness[mask] = pairwise_distances(
            qmat[mask], held_out, metric).min(axis=1)
    return hardness


# -- measurement -------------------------------------------------------------

def _pad_ids(results, k: int) -> np.ndarray:
    ids = np.full((len(results), k), -1, dtype=np.int64)
    for row, result in enumerate(results):
        got = result.ids[:k]
        ids[row, :len(got)] = got
    return ids


def _measure(searcher, qmat: np.ndarray, k: int, setting: BinSetting,
             batch_size: int) -> tuple[np.ndarray, float]:
    """Replay ``qmat`` at one setting; returns (padded ids, cost/query).

    Cost is exact distance computations plus down-weighted ADC lookups —
    the deterministic proxy the solver minimizes (wall-clock validation
    belongs to the benchmark gate, not the fit).
    """
    dc = searcher.dc
    adc = getattr(searcher, "adc", None)
    ndc0 = dc.ndc
    adc0 = adc.ndc if adc is not None else 0
    if hasattr(searcher, "search_group"):
        results = searcher.search_group(qmat, k, setting,
                                        batch_size=batch_size)
    else:
        results = searcher.search_batch(qmat, k, setting.ef,
                                        batch_size=batch_size)
    cost = float(dc.ndc - ndc0)
    if adc is not None:
        cost += ADC_COST_WEIGHT * float(adc.ndc - adc0)
    return _pad_ids(results, k), cost / max(qmat.shape[0], 1)


# -- fitting -----------------------------------------------------------------

def fit_tuned_config(searcher, queries: np.ndarray, k: int,
                     target_recall: float = 0.9,
                     ef_grid: list[int] | None = None, n_bins: int = 3,
                     n_landmarks: int = 16, batch_size: int = 64,
                     gt_ids: np.ndarray | None = None,
                     trace_stats: dict | None = None, seed: int = 0,
                     metric: Metric | str | None = None,
                     refine_routes: bool = True,
                     score_shift: float = 0.6) -> TunedConfig:
    """Fit a :class:`TunedConfig` by replaying queries through ``searcher``.

    ``searcher`` is anything with the index search protocol
    (``search_batch``/``dc``); a :class:`~repro.serving.ServingSearcher`
    additionally gets per-setting routing measured through the exact
    engines serving will use.  ``gt_ids`` (n, >=k) provides exact ground
    truth; without it a strong reference search (4x the grid maximum)
    stands in — live recall estimation.
    """
    qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    if metric is None:
        metric = searcher.dc.metric
    metric = Metric.parse(metric)
    if ef_grid is None:
        ef_grid = suggest_ef_grid(k, trace_stats)
    ef_grid = sorted({max(int(ef), k) for ef in ef_grid})

    landmarks = fit_landmarks(qmat, n_landmarks, metric, seed)
    hardness = _crossfit_hardness(qmat, landmarks, n_landmarks, metric, seed)
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.quantile(hardness, quantiles)
    bins = np.digitize(hardness, edges)

    if gt_ids is None:
        ref = BinSetting(ef=4 * ef_grid[-1], route="exact")
        gt_ids, _ = _measure(searcher, qmat, k, ref, batch_size)
    gt_ids = np.asarray(gt_ids)[:, :k]

    # Full (bin, ef) recall/cost table from batched replay.
    members = [np.flatnonzero(bins == b) for b in range(n_bins)]
    weights = np.array([m.size for m in members], dtype=np.float64)
    weights /= max(weights.sum(), 1.0)
    recall = np.zeros((n_bins, len(ef_grid)))
    cost = np.zeros((n_bins, len(ef_grid)))
    for b, idx in enumerate(members):
        if not idx.size:
            continue
        for j, ef in enumerate(ef_grid):
            found, per_query = _measure(searcher, qmat[idx], k,
                                        BinSetting(ef=ef), batch_size)
            recall[b, j] = float(recall_per_query(found, gt_ids[idx]).mean())
            cost[b, j] = per_query

    # The hand-set baseline: smallest single global ef meeting the target.
    default_j = len(ef_grid) - 1
    for j in range(len(ef_grid)):
        if float(weights @ recall[:, j]) >= target_recall:
            default_j = j
            break

    chosen = _solve_bin_efs(recall, cost, target_recall,
                            fallback_j=default_j)
    # Empty bins inherit the nearest fitted bin's choice (harder side wins
    # ties) — same convention as AdaptiveSearcher.calibrate.
    fitted = [b for b in range(n_bins) if members[b].size]
    for b in range(n_bins):
        if not members[b].size and fitted:
            chosen[b] = chosen[min(fitted, key=lambda f: (abs(f - b), -f))]

    settings = [BinSetting(ef=ef_grid[j]) for j in chosen]
    if refine_routes and getattr(searcher, "adc", None) is not None:
        settings = _refine_compressed(searcher, qmat, k, settings, members,
                                      gt_ids, recall, chosen, batch_size)

    table = {
        str(b): {
            "n_queries": int(members[b].size),
            "ef": settings[b].ef,
            "route": settings[b].route,
            "recall": round(float(recall[b, chosen[b]]), 4),
            "cost_per_query": round(float(cost[b, chosen[b]]), 1),
        } for b in range(n_bins)
    }
    return TunedConfig(
        k=k, target_recall=target_recall,
        edges=[float(e) for e in edges],
        bins=settings,
        landmarks=landmarks.tolist(),
        default_ef=ef_grid[default_j],
        score_shift=score_shift,
        metric=metric.value,
        meta={
            "ef_grid": ef_grid,
            "n_calibration_queries": int(qmat.shape[0]),
            "bin_table": table,
            "trace_stats": trace_stats or {},
            "ground_truth": "exact" if gt_ids is not None else "reference",
        },
    )


def _solve_bin_efs(recall: np.ndarray, cost: np.ndarray, target: float,
                   fallback_j: int, slack: float = 0.005) -> list[int]:
    """Cheapest per-bin ef with a *per-bin* recall floor.

    The floor for bin ``b`` is the better of the target (capped at what the
    grid can reach in that bin) and the single-ef baseline's measured
    recall there (minus measurement ``slack``).  Constraining every bin —
    not just the occupancy-weighted mean — keeps the fitted table no worse
    than the hand-set default under *any* serving mix: a joint solve would
    happily trade the hard bin's recall away against the easy majority,
    which collapses the moment the live distribution shifts hard.  Bins
    where the baseline undershoots the target get *larger* efs (the
    hardness-aware boost); bins where recall has saturated get cheaper
    ones.
    """
    n_bins, n_grid = recall.shape
    chosen = []
    for b in range(n_bins):
        floor = max(min(target, float(recall[b].max())),
                    float(recall[b, fallback_j]) - slack)
        feasible = [j for j in range(n_grid) if recall[b, j] >= floor]
        if feasible:
            chosen.append(min(feasible, key=lambda j: (cost[b, j], j)))
        else:
            chosen.append(fallback_j)
    return chosen


def _refine_compressed(searcher, qmat, k, settings, members, gt_ids,
                       recall, chosen, batch_size):
    """Route/rerank refinement for compressed stores.

    The hardest bin tries the exact full-precision route (OOD walks pay
    quantization error twice: bad hops *and* a shortlist that misses);
    easy bins try tighter rerank budgets.  A variant is adopted only when
    it keeps the bin's measured recall and lowers its cost.
    """
    base_rerank = int(getattr(searcher, "rerank", 2 * k) or 2 * k)
    for b, setting in enumerate(settings):
        idx = members[b]
        if not idx.size:
            continue
        floor = float(recall[b, chosen[b]])
        _, base_cost = _measure(searcher, qmat[idx], k, setting, batch_size)
        variants = []
        if b == len(settings) - 1:
            variants.append(BinSetting(ef=setting.ef, route="exact",
                                       beam_width=1))
        else:
            for budget in sorted({max(k, base_rerank // 2), 2 * k}):
                if budget < base_rerank:
                    variants.append(BinSetting(ef=setting.ef, rerank=budget))
        for variant in variants:
            found, var_cost = _measure(searcher, qmat[idx], k, variant,
                                       batch_size)
            var_recall = float(recall_per_query(found, gt_ids[idx]).mean())
            if var_recall >= floor and var_cost < base_cost:
                settings[b], base_cost, floor = variant, var_cost, var_recall
    return settings
