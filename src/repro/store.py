"""VectorStore — the batteries-included facade a downstream service uses.

Ties the library together behind one object: an HNSW base graph with
NGFix* fixing, online workload adaptation, payload storage, deletion with
automatic repair, and persistence.  Everything underneath is the public
API; the store only sequences it.

    store = VectorStore(dim=48, metric="cosine")
    store.add(vectors, payloads=[{"url": ...}, ...])
    store.fit_history(historical_queries)         # NGFix* repair
    hits = store.search(query, k=10)              # [(id, distance, payload)]
    store.delete([3, 17])
    store.save("index.npz")
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

import numpy as np

from repro.core.fixer import FixConfig, NGFixer
from repro.core.maintenance import IndexMaintainer
from repro.distances import Metric
from repro.graphs.hnsw import HNSW
from repro.io import load_index, save_index
from repro.utils.validation import check_positive


class VectorStore:
    """A small vector database around an NGFix*-maintained HNSW graph.

    Parameters
    ----------
    dim:
        Vector dimensionality (fixed at construction).
    metric:
        "l2", "ip", or "cosine".
    M, ef_construction:
        Base-graph build parameters.
    fix_config:
        NGFix* configuration; defaults to approximate preprocessing so
        history fitting never needs exact ground truth.
    """

    def __init__(self, dim: int, metric: Metric | str = Metric.COSINE,
                 M: int = 16, ef_construction: int = 100,
                 fix_config: FixConfig | None = None, seed: int = 0):
        check_positive(dim, "dim")
        self.dim = dim
        self.metric = Metric.parse(metric)
        self._build_params = dict(M=M, ef_construction=ef_construction,
                                  single_layer=True, seed=seed)
        self.fix_config = fix_config or FixConfig(preprocess="approx")
        self._payloads: dict[int, Any] = {}
        self._pending: list[np.ndarray] = []
        self._fixer: NGFixer | None = None
        self._maintainer: IndexMaintainer | None = None
        self._history: list[np.ndarray] = []

    # -- ingestion ----------------------------------------------------------

    def __len__(self) -> int:
        n = sum(v.shape[0] for v in self._pending)
        if self._fixer is not None:
            n += self._fixer.dc.size - len(self.deleted_ids)
        return n

    @property
    def is_built(self) -> bool:
        return self._fixer is not None

    @property
    def deleted_ids(self) -> set[int]:
        if self._fixer is None:
            return set()
        return set(self._fixer.adjacency.tombstones) | getattr(
            self._maintainer, "_deleted_ids", set())

    def add(self, vectors: np.ndarray,
            payloads: Sequence[Any] | None = None) -> list[int]:
        """Add vectors (with optional per-vector payloads); returns ids.

        Before the first build, vectors accumulate and are indexed together;
        afterwards each goes through HNSW's incremental insertion.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if payloads is not None and len(payloads) != vectors.shape[0]:
            raise ValueError("payloads length must match vectors")

        if self._fixer is None:
            first_id = sum(v.shape[0] for v in self._pending)
            self._pending.append(vectors)
            ids = list(range(first_id, first_id + vectors.shape[0]))
        else:
            ids = self._maintainer.insert(vectors)
        if payloads is not None:
            for i, payload in zip(ids, payloads):
                self._payloads[i] = payload
        return ids

    def build(self) -> "VectorStore":
        """Index all pending vectors (idempotent after the first call)."""
        if self._fixer is not None:
            if self._pending:
                raise RuntimeError("internal: pending vectors after build")
            return self
        if not self._pending:
            raise RuntimeError("add() vectors before build()")
        data = np.vstack(self._pending)
        self._pending = []
        base = HNSW(data, self.metric, **self._build_params)
        self._fixer = NGFixer(base, self.fix_config)
        self._maintainer = IndexMaintainer(
            self._fixer, np.empty((0, self.dim), dtype=np.float32)
            if not self._history else np.vstack(self._history))
        return self

    # -- fixing -------------------------------------------------------------

    def fit_history(self, queries: np.ndarray) -> dict:
        """Run NGFix*/RFix over historical queries (builds first if needed)."""
        if self._fixer is None:
            self.build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        self._history.append(queries)
        self._maintainer.history = np.vstack(self._history)
        self._fixer.fit(queries)
        return self._fixer.stats()

    def observe(self, query: np.ndarray) -> None:
        """Feed one served query back into online fixing."""
        if self._fixer is None:
            raise RuntimeError("build() before observe()")
        self._fixer.fix_query(np.asarray(query, dtype=np.float32))

    # -- serving ------------------------------------------------------------

    def search(self, query: np.ndarray, k: int = 10, ef: int | None = None,
               where=None) -> list[tuple[int, float, Any]]:
        """Top-k as (id, distance, payload) triples.

        ``where`` optionally filters by payload predicate
        (``payload -> bool``); filtered search over-fetches 4x (doubling up
        to 16x) and post-filters, the standard small-scale strategy, so very
        selective predicates may return fewer than k hits.
        """
        if self._fixer is None:
            self.build()
        query = np.asarray(query, dtype=np.float32)
        if where is None:
            result = self._fixer.search(query, k=k, ef=ef)
            return [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)]

        fetch = 4 * k
        while True:
            result = self._fixer.search(query, k=fetch,
                                        ef=max(ef or 0, fetch))
            hits = [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)
                    if where(self._payloads.get(int(i)))]
            if len(hits) >= k or fetch >= max(16 * k, self._fixer.dc.size):
                return hits[:k]
            fetch *= 2

    def get_payload(self, vector_id: int) -> Any:
        return self._payloads.get(int(vector_id))

    # -- maintenance ----------------------------------------------------------

    def delete(self, ids) -> bool:
        """Delete vectors; compaction + NGFix repair fire automatically."""
        if self._fixer is None:
            raise RuntimeError("build() before delete()")
        compacted = self._maintainer.delete(ids)
        for i in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            self._payloads.pop(int(i), None)
        return compacted

    def stats(self) -> dict:
        if self._fixer is None:
            return {"built": False, "pending": sum(v.shape[0] for v in self._pending)}
        out = self._fixer.stats()
        out["built"] = True
        out["payloads"] = len(self._payloads)
        return out

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist graph + payloads (payloads must be JSON-serializable)."""
        if self._fixer is None:
            raise RuntimeError("build() before save()")
        path = save_index(self._fixer, path)
        sidecar = path.with_suffix(".payloads.json")
        sidecar.write_text(json.dumps(
            {str(k): v for k, v in self._payloads.items()}))
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path,
             fix_config: FixConfig | None = None) -> "VectorStore":
        """Reload a saved store; further fixing works, insertion does not
        (the frozen graph lacks HNSW's builder state)."""
        path = pathlib.Path(path)
        frozen = load_index(path)
        store = cls(dim=frozen.dc.dim, metric=frozen.dc.metric,
                    fix_config=fix_config)
        store._fixer = NGFixer(frozen, store.fix_config)
        store._fixer.entry = frozen.entry
        store._maintainer = IndexMaintainer(
            store._fixer, np.empty((0, frozen.dc.dim), dtype=np.float32))
        sidecar = path.with_suffix(".payloads.json")
        if sidecar.exists():
            store._payloads = {int(k): v for k, v in
                               json.loads(sidecar.read_text()).items()}
        return store
