"""VectorStore — the batteries-included facade a downstream service uses.

Ties the library together behind one object: an HNSW base graph with
NGFix* fixing, online workload adaptation, payload storage, deletion with
automatic repair, and persistence.  Everything underneath is the public
API; the store only sequences it.

    store = VectorStore(dim=48, metric="cosine")
    store.add(vectors, payloads=[{"url": ...}, ...])
    store.fit_history(historical_queries)         # NGFix* repair
    hits = store.search(query, k=10)              # [(id, distance, payload)]
    store.delete([3, 17])
    store.save("index.npz")
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

import numpy as np

from repro.core.fixer import FixConfig, NGFixer
from repro.core.maintenance import IndexMaintainer
from repro.distances import Metric
from repro.graphs.hnsw import HNSW
from repro.io import load_index, save_index
from repro.serving import EpochManager, MaintenanceScheduler, ServingSearcher
from repro.utils.validation import check_positive


class VectorStore:
    """A small vector database around an NGFix*-maintained HNSW graph.

    Parameters
    ----------
    dim:
        Vector dimensionality (fixed at construction).
    metric:
        "l2", "ip", or "cosine".
    M, ef_construction:
        Base-graph build parameters.
    fix_config:
        NGFix* configuration; defaults to approximate preprocessing so
        history fitting never needs exact ground truth.
    serving:
        When True (default) queries run through the epoch-based serving
        layer (:mod:`repro.serving`): every search pins an immutable
        :class:`~repro.serving.GraphEpoch` plus the delta overlay at a fixed
        sequence number, so results are epoch-consistent under concurrent
        mutation and the O(E) CSR refreeze never runs on the query path.
        Set False to search the live graph directly (the pre-epoch
        behavior).
    scheduler_mode:
        "inline" (deterministic; repairs and merges drain synchronously at
        mutation/observe boundaries) or "thread" (a background worker does
        the draining).
    merge_every:
        Overlay mutation count that triggers merging into a fresh epoch.
    """

    def __init__(self, dim: int, metric: Metric | str = Metric.COSINE,
                 M: int = 16, ef_construction: int = 100,
                 fix_config: FixConfig | None = None, seed: int = 0,
                 serving: bool = True, scheduler_mode: str = "inline",
                 merge_every: int = 256):
        check_positive(dim, "dim")
        self.dim = dim
        self.metric = Metric.parse(metric)
        self._build_params = dict(M=M, ef_construction=ef_construction,
                                  single_layer=True, seed=seed)
        self.fix_config = fix_config or FixConfig(preprocess="approx")
        self._payloads: dict[int, Any] = {}
        self._pending: list[np.ndarray] = []
        self._fixer: NGFixer | None = None
        self._maintainer: IndexMaintainer | None = None
        self._history: list[np.ndarray] = []
        self._serving_enabled = serving
        self._scheduler_mode = scheduler_mode
        self._merge_every = merge_every
        self._manager: EpochManager | None = None
        self._searcher: ServingSearcher | None = None
        self._scheduler: MaintenanceScheduler | None = None

    # -- ingestion ----------------------------------------------------------

    def __len__(self) -> int:
        n = sum(v.shape[0] for v in self._pending)
        if self._fixer is not None:
            n += self._fixer.dc.size - len(self.deleted_ids)
        return n

    @property
    def is_built(self) -> bool:
        return self._fixer is not None

    @property
    def dc(self):
        """The distance computer (index protocol; None before build)."""
        return self._fixer.dc if self._fixer is not None else None

    @property
    def deleted_ids(self) -> set[int]:
        if self._fixer is None:
            return set()
        return set(self._fixer.adjacency.tombstones) | getattr(
            self._maintainer, "_deleted_ids", set())

    def add(self, vectors: np.ndarray,
            payloads: Sequence[Any] | None = None) -> list[int]:
        """Add vectors (with optional per-vector payloads); returns ids.

        Before the first build, vectors accumulate and are indexed together;
        afterwards each goes through HNSW's incremental insertion.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if payloads is not None and len(payloads) != vectors.shape[0]:
            raise ValueError("payloads length must match vectors")

        if self._fixer is None:
            first_id = sum(v.shape[0] for v in self._pending)
            self._pending.append(vectors)
            ids = list(range(first_id, first_id + vectors.shape[0]))
        elif self._scheduler is not None:
            with self._scheduler.write_lock:
                ids = self._maintainer.insert(vectors)
        else:
            ids = self._maintainer.insert(vectors)
        if payloads is not None:
            for i, payload in zip(ids, payloads):
                self._payloads[i] = payload
        return ids

    def build(self) -> "VectorStore":
        """Index all pending vectors (idempotent after the first call)."""
        if self._fixer is not None:
            if self._pending:
                raise RuntimeError("internal: pending vectors after build")
            return self
        if not self._pending:
            raise RuntimeError("add() vectors before build()")
        data = np.vstack(self._pending)
        self._pending = []
        base = HNSW(data, self.metric, **self._build_params)
        self._fixer = NGFixer(base, self.fix_config)
        self._maintainer = IndexMaintainer(
            self._fixer, np.empty((0, self.dim), dtype=np.float32)
            if not self._history else np.vstack(self._history))
        self._attach_serving()
        return self

    def _attach_serving(self) -> None:
        """Stand up the epoch serving stack around the built index."""
        if not self._serving_enabled:
            return
        self._manager = EpochManager(self._fixer.adjacency, self._fixer.entry)
        self._searcher = ServingSearcher(self._fixer, self._manager)
        self._scheduler = MaintenanceScheduler(
            self._fixer, self._manager, merge_every=self._merge_every,
            mode=self._scheduler_mode)
        self._maintainer.on_change = self._scheduler.note_mutations
        scheduler = self._scheduler

        def queue_depth() -> int:
            return len(scheduler._queue)

        self._searcher.queue_depth_fn = queue_depth
        if self._scheduler_mode == "thread":
            self._scheduler.start()

    # -- fixing -------------------------------------------------------------

    def fit_history(self, queries: np.ndarray) -> dict:
        """Run NGFix*/RFix over historical queries (builds first if needed).

        Under serving, the bulk fit runs with overlay logging suspended —
        in-flight searches keep serving the pre-fit epoch and the fitted
        graph becomes visible atomically via a fresh epoch cut on exit.
        """
        if self._fixer is None:
            self.build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        self._history.append(queries)
        self._maintainer.history = np.vstack(self._history)
        if self._scheduler is not None:
            with self._scheduler.bulk():
                self._fixer.fit(queries)
        else:
            self._fixer.fit(queries)
        return self._fixer.stats()

    def observe(self, query: np.ndarray) -> None:
        """Feed one served query back into online fixing.

        Under serving this enqueues the query with the maintenance
        scheduler, which repairs it with the full NGFix/RFix pass off the
        query path (synchronously in "inline" mode, on the background
        worker in "thread" mode).  Without serving it repairs immediately.
        """
        if self._fixer is None:
            raise RuntimeError("build() before observe()")
        if self._scheduler is not None:
            self._scheduler.observe(np.asarray(query, dtype=np.float32))
        else:
            self._fixer.fix_query(np.asarray(query, dtype=np.float32))

    # -- serving ------------------------------------------------------------

    def search(self, query: np.ndarray, k: int = 10, ef: int | None = None,
               where=None) -> list[tuple[int, float, Any]]:
        """Top-k as (id, distance, payload) triples.

        ``where`` optionally filters by payload predicate
        (``payload -> bool``); filtered search over-fetches 4x (doubling up
        to 16x) and post-filters, the standard small-scale strategy, so very
        selective predicates may return fewer than k hits.
        """
        if self._fixer is None:
            self.build()
        query = np.asarray(query, dtype=np.float32)
        searcher = self._searcher if self._searcher is not None else self._fixer
        if where is None:
            result = searcher.search(query, k=k, ef=ef)
            return [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)]

        fetch = 4 * k
        while True:
            result = searcher.search(query, k=fetch,
                                     ef=max(ef or 0, fetch))
            hits = [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)
                    if where(self._payloads.get(int(i)))]
            if len(hits) >= k or fetch >= max(16 * k, self._fixer.dc.size):
                return hits[:k]
            fetch *= 2

    def search_batch(self, queries: np.ndarray, k: int = 10,
                     ef: int | None = None, batch_size: int = 32):
        """Batched top-k over many queries; one epoch pin per engine block.

        Returns a list of :class:`~repro.graphs.search.SearchResult` (no
        payload join — use :meth:`get_payload` for that), taking the batched
        lock-step engine which is the throughput-optimal path.
        """
        if self._fixer is None:
            self.build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        searcher = self._searcher if self._searcher is not None else self._fixer
        return searcher.search_batch(queries, k, ef, batch_size=batch_size)

    def get_payload(self, vector_id: int) -> Any:
        return self._payloads.get(int(vector_id))

    # -- maintenance ----------------------------------------------------------

    def delete(self, ids) -> bool:
        """Delete vectors; compaction + NGFix repair fire automatically.

        Under serving, a compaction (which rewires edges store-wide) is
        immediately followed by an epoch merge so new pins see the compacted
        graph rather than paying overlay lookups for every rewired node.
        """
        if self._fixer is None:
            raise RuntimeError("build() before delete()")
        if self._scheduler is not None:
            with self._scheduler.write_lock:
                compacted = self._maintainer.delete(ids)
                if compacted:
                    self._scheduler.merge_now()
        else:
            compacted = self._maintainer.delete(ids)
        for i in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            self._payloads.pop(int(i), None)
        return compacted

    def flush(self) -> None:
        """Drain pending online repairs and due merges (no-op sans serving)."""
        if self._scheduler is not None:
            self._scheduler.flush()

    @property
    def scheduler(self) -> MaintenanceScheduler | None:
        """The serving maintenance scheduler (None before build / sans serving)."""
        return self._scheduler

    @property
    def epochs(self) -> EpochManager | None:
        """The epoch manager (None before build / sans serving)."""
        return self._manager

    @property
    def searcher(self) -> ServingSearcher | None:
        """The epoch-pinning searcher (None before build / sans serving).

        Exposes the raw index protocol (``search`` returning
        :class:`~repro.graphs.search.SearchResult`, ``search_batch``,
        ``search_many``, ``dc``) for harnesses that compose the store with
        evaluation or caching layers.
        """
        return self._searcher

    def stats(self) -> dict:
        if self._fixer is None:
            return {"built": False, "pending": sum(v.shape[0] for v in self._pending)}
        out = self._fixer.stats()
        out["built"] = True
        out["payloads"] = len(self._payloads)
        if self._scheduler is not None:
            out["serving"] = self._scheduler.stats()
        return out

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist graph + payloads (payloads must be JSON-serializable)."""
        if self._fixer is None:
            raise RuntimeError("build() before save()")
        path = save_index(self._fixer, path)
        sidecar = path.with_suffix(".payloads.json")
        sidecar.write_text(json.dumps(
            {str(k): v for k, v in self._payloads.items()}))
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path,
             fix_config: FixConfig | None = None,
             serving: bool = True) -> "VectorStore":
        """Reload a saved store; further fixing works, insertion does not
        (the frozen graph lacks HNSW's builder state)."""
        path = pathlib.Path(path)
        frozen = load_index(path)
        store = cls(dim=frozen.dc.dim, metric=frozen.dc.metric,
                    fix_config=fix_config, serving=serving)
        store._fixer = NGFixer(frozen, store.fix_config)
        store._fixer.entry = frozen.entry
        store._maintainer = IndexMaintainer(
            store._fixer, np.empty((0, frozen.dc.dim), dtype=np.float32))
        sidecar = path.with_suffix(".payloads.json")
        if sidecar.exists():
            store._payloads = {int(k): v for k, v in
                               json.loads(sidecar.read_text()).items()}
        store._attach_serving()
        return store
