"""VectorStore — the batteries-included facade a downstream service uses.

Ties the library together behind one object: an HNSW base graph with
NGFix* fixing, online workload adaptation, payload storage, deletion with
automatic repair, and persistence.  Everything underneath is the public
API; the store only sequences it.

    store = VectorStore(dim=48, metric="cosine")
    store.add(vectors, payloads=[{"url": ...}, ...])
    store.fit_history(historical_queries)         # NGFix* repair
    hits = store.search(query, k=10)              # [(id, distance, payload)]
    store.delete([3, 17])
    store.save("index.npz")
"""

from __future__ import annotations

import contextlib
import json
import pathlib
from typing import Any, Sequence

import numpy as np

from repro.control.policy import MaintenancePolicy, make_policy
from repro.core.fixer import FixConfig, NGFixer
from repro.core.maintenance import IndexMaintainer
from repro.distances import Metric
from repro.durability.snapshot import SnapshotInfo, SnapshotManager, atomic_write_text
from repro.durability.wal import WriteAheadLog
from repro.graphs.hnsw import HNSW
from repro.io import load_index, save_index
from repro.quantization.adc import ADCComputer
from repro.quantization.pq import ProductQuantizer
from repro.serving import EpochManager, MaintenanceScheduler, ServingSearcher
from repro.tuning import HardnessPlanner, TunedConfig, coerce_tuned_config
from repro.utils.validation import check_positive

#: Constructor parameters persisted into the wal_dir so
#: :func:`repro.durability.recover` can rebuild the store shell.
_CONFIG_NAME = "store-config.json"


class VectorStore:
    """A small vector database around an NGFix*-maintained HNSW graph.

    Parameters
    ----------
    dim:
        Vector dimensionality (fixed at construction).
    metric:
        "l2", "ip", or "cosine".
    M, ef_construction:
        Base-graph build parameters.
    fix_config:
        NGFix* configuration; defaults to approximate preprocessing so
        history fitting never needs exact ground truth.
    serving:
        When True (default) queries run through the epoch-based serving
        layer (:mod:`repro.serving`): every search pins an immutable
        :class:`~repro.serving.GraphEpoch` plus the delta overlay at a fixed
        sequence number, so results are epoch-consistent under concurrent
        mutation and the O(E) CSR refreeze never runs on the query path.
        Set False to search the live graph directly (the pre-epoch
        behavior).
    scheduler_mode:
        "inline" (deterministic; repairs and merges drain synchronously at
        mutation/observe boundaries) or "thread" (a background worker does
        the draining).
    merge_every:
        Overlay mutation count that triggers merging into a fresh epoch.
    wal_dir:
        When set, the store is *durable*: every acknowledged
        insert/delete — plus scheduler repair and merge commits — is
        journaled to a write-ahead log in this directory before the call
        returns, and :meth:`checkpoint` writes atomic snapshots there.
        After a crash, :func:`repro.durability.recover` rebuilds the store
        from snapshot + WAL tail.  The directory must be fresh (or fully
        checkpointed-and-pruned); reopening one with history raises —
        recovery, not blind appending, is the restart path.
    sync_every:
        WAL fsync batching: fsync once per this many records (1 = every
        record, 0 = rely on OS flush only).  See docs/durability.md for
        the durability window each setting buys.
    checkpoint_every:
        Automatic checkpoint cadence in WAL records (0 = manual
        :meth:`checkpoint` only).
    compressed:
        When True, serving runs the PQ-resident hot path: traversal scores
        candidates with ADC table lookups over a resident uint8 code matrix
        (re-encoded incrementally on insert) and only the top-``rerank``
        shortlist touches full-precision vectors.  Requires ``serving``.
    pq_m, pq_ks:
        Product-quantizer geometry for compressed mode: subspace count
        (``None`` = largest of 8/6/4/3/2/1 dividing ``dim``) and centroids
        per codebook.
    rerank:
        Exact re-rank budget of the compressed path (shortlist length
        re-scored with full-precision distances; >= k at search time).
    memmap_path:
        When set, :meth:`build` spills the raw vector matrix to this file
        and serves it through ``np.memmap`` — the disk-resident vector
        tier.  With ``compressed`` the traversal never touches it; only
        re-rank gathers page rows in.
    policy, policy_config:
        Maintenance control plane (:mod:`repro.control`): ``None``
        (default) keeps the historical fixed-cadence behavior exactly;
        ``"cadence"`` selects it explicitly; ``"signal"`` triggers
        merge/repair from navigability signals (query-trace hardness,
        delete storms, tombstone density) instead of fixed counts.
        ``policy_config`` passes keyword arguments to the named policy's
        constructor; a ready :class:`~repro.control.MaintenancePolicy`
        instance is also accepted.
    tuned_config:
        A fitted :class:`~repro.tuning.TunedConfig` (instance, dict, or
        JSON path — ``repro tune`` emits one).  With the serving layer up,
        a :class:`~repro.tuning.HardnessPlanner` is attached: ``ef``-less
        searches resolve per-query hardness bins to fitted
        ``ef``/route/rerank settings, batches partition by predicted bin,
        and landmark entry points seed each block.  ``None`` (default)
        keeps today's fixed defaults exactly.  Persisted into
        ``store-config.json`` so recovery restores it.
    """

    def __init__(self, dim: int, metric: Metric | str = Metric.COSINE,
                 M: int = 16, ef_construction: int = 100,
                 fix_config: FixConfig | None = None, seed: int = 0,
                 serving: bool = True, scheduler_mode: str = "inline",
                 merge_every: int = 256,
                 wal_dir: str | pathlib.Path | None = None,
                 sync_every: int = 8, checkpoint_every: int = 0,
                 compressed: bool = False, pq_m: int | None = None,
                 pq_ks: int = 32, rerank: int = 50,
                 memmap_path: str | pathlib.Path | None = None,
                 beam_width: int | None = None,
                 policy: str | MaintenancePolicy | None = None,
                 policy_config: dict | None = None,
                 tuned_config: TunedConfig | dict | str | pathlib.Path | None
                 = None):
        check_positive(dim, "dim")
        if beam_width is not None:
            check_positive(beam_width, "beam_width")
        if compressed and not serving:
            raise ValueError(
                "compressed=True runs through the serving layer; it cannot "
                "be combined with serving=False (use PQRerankSearcher "
                "directly for unserved PQ search)")
        self.dim = dim
        self.metric = Metric.parse(metric)
        self._build_params = dict(M=M, ef_construction=ef_construction,
                                  single_layer=True, seed=seed)
        self._compressed = compressed
        self._pq_m = pq_m
        self._pq_ks = pq_ks
        self._rerank = rerank
        self._beam_width = beam_width
        self._memmap_path = (None if memmap_path is None
                             else pathlib.Path(memmap_path))
        self._adc: ADCComputer | None = None
        self._shared_pq: ProductQuantizer | None = None
        self.fix_config = fix_config or FixConfig(preprocess="approx")
        self._payloads: dict[int, Any] = {}
        self._pending: list[np.ndarray] = []
        self._fixer: NGFixer | None = None
        self._maintainer: IndexMaintainer | None = None
        self._history: list[np.ndarray] = []
        self._serving_enabled = serving
        self._scheduler_mode = scheduler_mode
        self._merge_every = merge_every
        # Validate + construct the maintenance policy up front (fail fast
        # on unknown names/bad config); None keeps the scheduler's own
        # cadence default so the historical path is untouched.
        self._policy = make_policy(policy, merge_every, policy_config)
        self._policy_name = (policy if isinstance(policy, str)
                             else self._policy.name
                             if self._policy is not None else None)
        self._policy_config = dict(policy_config) if policy_config else None
        self._tuned_config = coerce_tuned_config(tuned_config)
        self._manager: EpochManager | None = None
        self._searcher: ServingSearcher | None = None
        self._scheduler: MaintenanceScheduler | None = None
        self._wal: WriteAheadLog | None = None
        self._snapshots: SnapshotManager | None = None
        self._checkpoint_every = checkpoint_every
        self._last_checkpoint_seq = 0
        if wal_dir is not None:
            self._init_durability(pathlib.Path(wal_dir), sync_every,
                                  M, ef_construction, seed)

    def _init_durability(self, wal_dir: pathlib.Path, sync_every: int,
                         M: int, ef_construction: int, seed: int) -> None:
        wal_dir.mkdir(parents=True, exist_ok=True)
        has_history = (
            any(p.stat().st_size > 0 for p in wal_dir.glob("wal-*.log"))
            or any(wal_dir.glob("snapshot-*.manifest.json")))
        if has_history:
            raise RuntimeError(
                f"{wal_dir} already holds WAL records or snapshots; "
                "restart through repro.durability.recover() instead of "
                "constructing a fresh store over existing history")
        atomic_write_text(wal_dir / _CONFIG_NAME, json.dumps({
            "dim": self.dim, "metric": self.metric.value,
            "M": M, "ef_construction": ef_construction, "seed": seed,
            "serving": self._serving_enabled,
            "scheduler_mode": self._scheduler_mode,
            "merge_every": self._merge_every,
            "sync_every": sync_every,
            "checkpoint_every": self._checkpoint_every,
            "compressed": self._compressed,
            "pq_m": self._pq_m, "pq_ks": self._pq_ks,
            "rerank": self._rerank,
            "policy": self._policy_name,
            "policy_config": self._policy_config,
            "tuned_config": (self._tuned_config.to_dict()
                             if self._tuned_config is not None else None),
        }))
        self._wal = WriteAheadLog(wal_dir, sync_every=sync_every)
        self._snapshots = SnapshotManager(wal_dir)

    # -- ingestion ----------------------------------------------------------

    def __len__(self) -> int:
        n = sum(v.shape[0] for v in self._pending)
        if self._fixer is not None:
            n += self._fixer.dc.size - len(self.deleted_ids)
        return n

    @property
    def is_built(self) -> bool:
        return self._fixer is not None

    @property
    def dc(self):
        """The distance computer (index protocol; None before build)."""
        return self._fixer.dc if self._fixer is not None else None

    @property
    def deleted_ids(self) -> set[int]:
        if self._fixer is None:
            return set()
        # adjacency.removed (persisted in snapshots) covers compacted ids,
        # so recovered stores report them too.
        return (set(self._fixer.adjacency.tombstones)
                | self._fixer.adjacency.removed)

    def add(self, vectors: np.ndarray,
            payloads: Sequence[Any] | None = None) -> list[int]:
        """Add vectors (with optional per-vector payloads); returns ids.

        Before the first build, vectors accumulate and are indexed together;
        afterwards each goes through HNSW's incremental insertion.  Stores
        reloaded with :meth:`load` cannot insert (their graph is frozen —
        see the :meth:`load` docstring); stores rebuilt by
        :func:`repro.durability.recover` can.

        With a ``wal_dir``, the batch is journaled before this returns:
        an id you received back is an *acknowledged* write and survives a
        crash (WAL payloads must be JSON-serializable).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if payloads is not None and len(payloads) != vectors.shape[0]:
            raise ValueError("payloads length must match vectors")
        if (self._fixer is not None
                and not hasattr(self._fixer.index, "insert")):
            raise RuntimeError(
                f"this store serves a frozen {type(self._fixer.index).__name__} "
                "(VectorStore.load() artifact) without HNSW builder state, so "
                "add() is unavailable; rebuild from vectors, or restore "
                "through repro.durability.recover() which loads snapshots "
                "insert-capable")

        if self._fixer is None:
            first_id = sum(v.shape[0] for v in self._pending)
            self._pending.append(vectors)
            ids = list(range(first_id, first_id + vectors.shape[0]))
            if self._wal is not None:
                self._wal.log_insert(first_id, vectors, payloads)
        elif self._scheduler is not None:
            # Journal inside the write lock so the record lands in commit
            # order relative to the scheduler's own observe/merge records.
            with self._scheduler.write_lock, self._deferred_merge_notify():
                ids = self._maintainer.insert(vectors)
                self._sync_codes()
                if self._wal is not None:
                    self._wal.log_insert(ids[0] if ids else 0, vectors,
                                         payloads)
                # Feed the policy before the deferred merge callback fires
                # so the merge decision sees this batch's pressure.
                self._scheduler.note_mutation_kind("insert", len(ids))
        else:
            ids = self._maintainer.insert(vectors)
            self._sync_codes()
            if self._wal is not None:
                self._wal.log_insert(ids[0] if ids else 0, vectors, payloads)
        if payloads is not None:
            for i, payload in zip(ids, payloads):
                self._payloads[i] = payload
        if self._wal is not None:
            self._maybe_checkpoint()
        return ids

    def _sync_codes(self) -> None:
        """Incrementally re-encode freshly inserted rows into the PQ codes.

        Called on the insert path (inside the write lock under serving) so
        the compressed searcher's code matrix always covers every published
        node id; searches additionally lazy-sync as a safety net.
        """
        if self._adc is not None:
            self._adc.sync()

    @contextlib.contextmanager
    def _deferred_merge_notify(self):
        """Hold back the maintainer's merge-cadence callback while applying
        and journaling one mutation.

        The maintainer fires ``on_change`` *inside* insert/delete, which in
        inline mode can merge (and journal a merge-cut) before the mutation
        itself is journaled — inverting WAL order relative to commit order.
        Detaching the callback for the apply+journal window and firing it
        afterwards keeps the log's order equal to what actually happened;
        replay then re-triggers the same cascade at the same point.  On an
        exception the callback is restored but not fired.
        """
        notify, self._maintainer.on_change = self._maintainer.on_change, None
        try:
            yield
        finally:
            self._maintainer.on_change = notify
        if notify is not None:
            notify()

    def build(self) -> "VectorStore":
        """Index all pending vectors (idempotent after the first call)."""
        if self._fixer is not None:
            if self._pending:
                raise RuntimeError("internal: pending vectors after build")
            return self
        if not self._pending:
            raise RuntimeError("add() vectors before build()")
        data = np.vstack(self._pending)
        self._pending = []
        base = HNSW(data, self.metric, **self._build_params)
        self._fixer = NGFixer(base, self.fix_config)
        self._maintainer = IndexMaintainer(
            self._fixer, np.empty((0, self.dim), dtype=np.float32)
            if not self._history else np.vstack(self._history))
        if self._wal is not None:
            # Build-boundary marker: replay bulk-builds exactly the inserts
            # logged before this record and goes incremental after it, so
            # the recovered graph structure matches the original's.
            self._wal.log_build()
        self._attach_serving()
        return self

    def _attach_serving(self) -> None:
        """Stand up the epoch serving stack around the built index."""
        if self._memmap_path is not None and not self._fixer.dc.is_memmap:
            # Spill before fitting PQ codes so the encode pass streams from
            # the file and steady-state RSS never includes the raw matrix.
            self._fixer.dc.use_memmap(self._memmap_path)
        if not self._serving_enabled:
            return
        if self._compressed:
            # A shipped codebook (apply_pq before build — the cluster
            # router's code-shipping path) is adopted as-is: ADCComputer
            # only fits an unfitted quantizer, so shared codes stay
            # mutually comparable across shards.
            pq = self._shared_pq or ProductQuantizer(
                m=self._pq_m or ADCComputer._default_m(self.dim),
                ks=self._pq_ks, metric=self.metric,
                seed=self._build_params["seed"])
            self._adc = ADCComputer(self._fixer.dc, pq)
        self._manager = EpochManager(self._fixer.adjacency, self._fixer.entry)
        self._searcher = ServingSearcher(self._fixer, self._manager,
                                         adc=self._adc, rerank=self._rerank,
                                         beam_width=self._beam_width)
        self._scheduler = MaintenanceScheduler(
            self._fixer, self._manager, merge_every=self._merge_every,
            mode=self._scheduler_mode, policy=self._policy)
        self._maintainer.on_change = self._scheduler.note_mutations
        scheduler = self._scheduler

        def queue_depth() -> int:
            return len(scheduler._queue)

        self._searcher.queue_depth_fn = queue_depth
        if self._scheduler.policy.wants_traces:
            # Trace-hungry policies (SignalPolicy) get the per-query feed;
            # the default cadence policy leaves the sink None so the hot
            # path builds no traces unless telemetry is on.
            self._searcher.trace_sink = self._scheduler.note_trace
        self._scheduler.wal = self._wal
        if self._tuned_config is not None:
            self._attach_planner()
        if self._scheduler_mode == "thread":
            self._scheduler.start()

    def _attach_planner(self) -> None:
        """Stand up the hardness planner over the serving searcher.

        ``locate_fn`` resolves landmark centroids against the *live* graph
        (node ids are store-local, so the tuned config never persists
        them); ``score_fn`` feeds the control plane's navigability score in
        as the workload-hardness prior when a :class:`SignalPolicy` is
        driving maintenance.
        """
        if self._searcher is None or self._tuned_config is None:
            return
        fixer = self._fixer

        def locate(vector: np.ndarray) -> int | None:
            result = fixer.search(np.asarray(vector, dtype=np.float32),
                                  k=4, ef=32)
            dead = fixer.adjacency.excluded_ids() or ()
            for i in result.ids:
                if int(i) not in dead:
                    return int(i)
            return None

        signals = getattr(self._policy, "signals", None)
        score_fn = signals.hardness_prior if signals is not None else None
        self._searcher.attach_planner(HardnessPlanner(
            self._tuned_config, score_fn=score_fn, locate_fn=locate))

    # -- fixing -------------------------------------------------------------

    def fit_history(self, queries: np.ndarray) -> dict:
        """Run NGFix*/RFix over historical queries (builds first if needed).

        Under serving, the bulk fit runs with overlay logging suspended —
        in-flight searches keep serving the pre-fit epoch and the fitted
        graph becomes visible atomically via a fresh epoch cut on exit.
        """
        if self._fixer is None:
            self.build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        self._history.append(queries)
        self._maintainer.history = np.vstack(self._history)
        if self._scheduler is not None:
            with self._scheduler.bulk():
                self._fixer.fit(queries)
        else:
            self._fixer.fit(queries)
        return self._fixer.stats()

    def observe(self, query: np.ndarray) -> bool:
        """Feed one served query back into online fixing.

        Under serving this enqueues the query with the maintenance
        scheduler, which repairs it with the full NGFix/RFix pass off the
        query path (synchronously in "inline" mode, on the background
        worker in "thread" mode).  Without serving it repairs immediately.

        Returns True when the query was accepted; False when admission
        control shed it (repair queue saturated or worker dead — repair
        feedback is best-effort, searches are never shed).
        """
        if self._fixer is None:
            raise RuntimeError("build() before observe()")
        query = np.asarray(query, dtype=np.float32)
        if self._scheduler is not None:
            return self._scheduler.observe(query)
        self._fixer.fix_query(query)
        if self._wal is not None:
            self._wal.log_observe(query)
        return True

    # -- serving ------------------------------------------------------------

    def search(self, query: np.ndarray, k: int = 10, ef: int | None = None,
               where=None,
               deadline_ms: float | None = None) -> list[tuple[int, float, Any]]:
        """Top-k as (id, distance, payload) triples.

        ``where`` optionally filters by payload predicate
        (``payload -> bool``); filtered search over-fetches 4x (doubling up
        to 16x) and post-filters, the standard small-scale strategy, so very
        selective predicates may return fewer than k hits.

        ``deadline_ms`` bounds the search's latency budget (serving layer
        only): an expired budget returns best-so-far results instead of
        blocking — see :meth:`ServingSearcher.search
        <repro.serving.ServingSearcher.search>`.  Not combinable with
        ``where`` (filtered search re-queries, so one budget does not map
        onto it).
        """
        if self._fixer is None:
            self.build()
        query = np.asarray(query, dtype=np.float32)
        searcher = self._searcher if self._searcher is not None else self._fixer
        extra = {}
        if deadline_ms is not None:
            if where is not None:
                raise ValueError("deadline_ms cannot be combined with where=")
            if searcher is not self._searcher:
                raise RuntimeError(
                    "deadline_ms requires the serving layer (serving=True)")
            extra["deadline_ms"] = deadline_ms
        if where is None:
            result = searcher.search(query, k=k, ef=ef, **extra)
            return [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)]

        fetch = 4 * k
        while True:
            result = searcher.search(query, k=fetch,
                                     ef=max(ef or 0, fetch))
            hits = [(int(i), float(d), self._payloads.get(int(i)))
                    for i, d in zip(result.ids, result.distances)
                    if where(self._payloads.get(int(i)))]
            if len(hits) >= k or fetch >= max(16 * k, self._fixer.dc.size):
                return hits[:k]
            fetch *= 2

    def search_batch(self, queries: np.ndarray, k: int = 10,
                     ef: int | None = None, batch_size: int = 32,
                     deadline_ms: float | None = None):
        """Batched top-k over many queries; one epoch pin per engine block.

        Returns a list of :class:`~repro.graphs.search.SearchResult` (no
        payload join — use :meth:`get_payload` for that), taking the batched
        lock-step engine which is the throughput-optimal path.
        ``deadline_ms`` budgets the whole batch (serving layer only);
        results past the budget come back best-so-far with ``degraded``
        set.
        """
        if self._fixer is None:
            self.build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        searcher = self._searcher if self._searcher is not None else self._fixer
        if deadline_ms is not None:
            if searcher is not self._searcher:
                raise RuntimeError(
                    "deadline_ms requires the serving layer (serving=True)")
            return searcher.search_batch(queries, k, ef,
                                         batch_size=batch_size,
                                         deadline_ms=deadline_ms)
        return searcher.search_batch(queries, k, ef, batch_size=batch_size)

    def get_payload(self, vector_id: int) -> Any:
        return self._payloads.get(int(vector_id))

    # -- maintenance ----------------------------------------------------------

    def delete(self, ids) -> bool:
        """Delete vectors; compaction + NGFix repair fire automatically.

        Under serving, a compaction (which rewires edges store-wide) is
        immediately followed by an epoch merge so new pins see the compacted
        graph rather than paying overlay lookups for every rewired node.
        """
        if self._fixer is None:
            raise RuntimeError("build() before delete()")
        if self._scheduler is not None:
            # Journal the delete before the merges it triggers (the
            # cadence callback and the post-compaction cut below), so WAL
            # order equals commit order and replay re-cuts the same epochs.
            with self._scheduler.write_lock:
                with self._deferred_merge_notify():
                    compacted = self._maintainer.delete(ids)
                    if self._wal is not None:
                        self._wal.log_delete(ids)
                    # Inside the deferred window: the storm detector must
                    # see these deletes before the held-back merge-cadence
                    # callback evaluates its decision on block exit.
                    self._scheduler.note_mutation_kind(
                        "delete", np.atleast_1d(np.asarray(ids)).size)
                if compacted:
                    self._scheduler.merge_now()
        else:
            compacted = self._maintainer.delete(ids)
            if self._wal is not None:
                self._wal.log_delete(ids)
        for i in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            self._payloads.pop(int(i), None)
        if self._wal is not None:
            self._maybe_checkpoint()
        return compacted

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Drain pending online repairs and due merges (no-op sans serving).

        Returns True once the queue drained; False when the wait timed out
        with work still pending (also counted in ``maintenance_flush_timeouts``),
        so callers can tell a drained queue from a stuck worker.
        """
        if self._scheduler is not None:
            return self._scheduler.flush(timeout=timeout)
        return True

    def checkpoint(self, keep_snapshots: int = 2) -> SnapshotInfo:
        """Write an atomic snapshot and truncate the WAL behind it.

        The snapshot captures the full live graph (including online-repair
        edges and tombstones) plus payloads at the current WAL sequence
        number; once committed, the log rotates and segments the snapshot
        covers are pruned, keeping the directory bounded.  Requires a
        ``wal_dir``.
        """
        if self._wal is None:
            raise RuntimeError("checkpoint() requires a store built with wal_dir")
        if self._fixer is None:
            self.build()
        if self._scheduler is not None:
            with self._scheduler.write_lock:
                return self._checkpoint_locked(keep_snapshots)
        return self._checkpoint_locked(keep_snapshots)

    def _checkpoint_locked(self, keep_snapshots: int) -> SnapshotInfo:
        self._wal.sync()
        seq = self._wal.seq
        info = self._snapshots.write(self._fixer, self._payloads, seq)
        self._wal.rotate()
        self._wal.prune(seq)
        self._snapshots.prune(keep=keep_snapshots)
        self._last_checkpoint_seq = seq
        return info

    def _maybe_checkpoint(self) -> None:
        if (self._checkpoint_every > 0 and self._fixer is not None
                and self._wal.seq - self._last_checkpoint_seq
                >= self._checkpoint_every):
            self.checkpoint()

    def _attach_wal(self, wal: WriteAheadLog,
                    snapshots: SnapshotManager) -> None:
        """Adopt an already-open log (recovery attaches after replay)."""
        self._wal = wal
        self._snapshots = snapshots
        self._last_checkpoint_seq = wal.seq
        if self._scheduler is not None:
            self._scheduler.wal = wal

    def _adopt_index(self, index, payloads: dict[int, Any]) -> None:
        """Install a reconstructed index (load()/recovery) as the store's own."""
        self._fixer = NGFixer(index, self.fix_config)
        self._fixer.entry = index.entry
        self._maintainer = IndexMaintainer(
            self._fixer, np.empty((0, index.dc.dim), dtype=np.float32))
        self._payloads = payloads
        self._attach_serving()

    @property
    def adc(self) -> ADCComputer | None:
        """The compressed path's ADC computer (None unless ``compressed``)."""
        return self._adc

    def apply_pq(self, pq: ProductQuantizer) -> None:
        """Adopt a pre-trained (shipped) PQ codebook for compressed serving.

        The cluster router trains one quantizer on a data sample and
        broadcasts it so every shard encodes with the *same* codebook —
        ADC scores are then comparable across the whole cluster.  Called
        before :meth:`build`, the codebook is stashed and used when the
        serving stack comes up; on a built store the resident codes are
        re-encoded immediately and the searcher's cached engine is
        invalidated (see :meth:`ServingSearcher.attach_adc
        <repro.serving.ServingSearcher.attach_adc>`).
        """
        if not pq.is_fitted:
            raise ValueError("apply_pq expects a fitted ProductQuantizer")
        if pq.dim != self.dim:
            raise ValueError(
                f"codebook dimension {pq.dim} != store dimension {self.dim}")
        self._shared_pq = pq
        self._compressed = True
        self._pq_m, self._pq_ks = pq.m, pq.ks
        if self._fixer is None or not self._serving_enabled:
            return
        lock = (self._scheduler.write_lock if self._scheduler is not None
                else contextlib.nullcontext())
        with lock:
            self._adc = ADCComputer(self._fixer.dc, pq)
            if self._searcher is not None:
                self._searcher.attach_adc(self._adc, rerank=self._rerank)

    @property
    def tuned_config(self) -> TunedConfig | None:
        """The adopted tuned serving table (None = fixed defaults)."""
        return self._tuned_config

    def apply_tuned_config(
            self,
            config: TunedConfig | dict | str | pathlib.Path | None) -> None:
        """Adopt (or drop, with None) a fitted tuned config at runtime.

        On a built serving store the hardness planner re-attaches
        immediately; on a durable store ``store-config.json`` is rewritten
        so :func:`repro.durability.recover` restores the same table.
        """
        self._tuned_config = coerce_tuned_config(config)
        if self._searcher is not None:
            if self._tuned_config is None:
                self._searcher.attach_planner(None)
            else:
                self._attach_planner()
        if self._wal is not None:
            config_path = self._wal.directory / _CONFIG_NAME
            stored = json.loads(config_path.read_text())
            stored["tuned_config"] = (
                self._tuned_config.to_dict()
                if self._tuned_config is not None else None)
            atomic_write_text(config_path, json.dumps(stored))

    def close(self) -> None:
        """Stop background work and seal the WAL (flushes + fsyncs)."""
        if self._scheduler is not None and self._scheduler_mode == "thread":
            self._scheduler.stop()
        if self._wal is not None:
            self._wal.close()

    @property
    def wal(self) -> WriteAheadLog | None:
        """The write-ahead log (None unless built with ``wal_dir``)."""
        return self._wal

    @property
    def scheduler(self) -> MaintenanceScheduler | None:
        """The serving maintenance scheduler (None before build / sans serving)."""
        return self._scheduler

    @property
    def epochs(self) -> EpochManager | None:
        """The epoch manager (None before build / sans serving)."""
        return self._manager

    @property
    def searcher(self) -> ServingSearcher | None:
        """The epoch-pinning searcher (None before build / sans serving).

        Exposes the raw index protocol (``search`` returning
        :class:`~repro.graphs.search.SearchResult`, ``search_batch``,
        ``search_many``, ``dc``) for harnesses that compose the store with
        evaluation or caching layers.
        """
        return self._searcher

    def stats(self) -> dict:
        if self._fixer is None:
            return {"built": False, "pending": sum(v.shape[0] for v in self._pending)}
        out = self._fixer.stats()
        out["built"] = True
        out["payloads"] = len(self._payloads)
        if self._scheduler is not None:
            out["serving"] = self._scheduler.stats()
        if self._adc is not None:
            searcher = self._searcher
            out["compressed"] = {
                "pq_m": self._adc.pq.m,
                "pq_ks": self._adc.pq.ks,
                "rerank": self._rerank,
                "code_bytes": self._adc.code_bytes,
            }
            if searcher is not None:
                # Aggregatable searcher counters (adc_scored, rerank_ndc,
                # ...) sum cleanly across shards via cluster.merge_stats.
                out["compressed"].update(searcher.stats())
        elif self._searcher is not None:
            out["searcher"] = self._searcher.stats()
        if self._tuned_config is not None:
            out["tuned"] = {
                "n_bins": self._tuned_config.n_bins,
                "default_ef": self._tuned_config.default_ef,
                "target_recall": self._tuned_config.target_recall,
            }
        if self._fixer.dc.is_memmap:
            out["memmap"] = {
                "path": str(self._fixer.dc.memmap_path),
                "vector_bytes": self._fixer.dc.vector_bytes,
            }
        if self._wal is not None:
            out["wal"] = self._wal.stats()
            out["last_checkpoint_seq"] = self._last_checkpoint_seq
        return out

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist graph + payloads (payloads must be JSON-serializable)."""
        if self._fixer is None:
            raise RuntimeError("build() before save()")
        path = save_index(self._fixer, path)
        sidecar = path.with_suffix(".payloads.json")
        atomic_write_text(sidecar, json.dumps(
            {str(k): v for k, v in self._payloads.items()}))
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path,
             fix_config: FixConfig | None = None,
             serving: bool = True, compressed: bool = False,
             pq_m: int | None = None, pq_ks: int = 32, rerank: int = 50,
             memmap_dir: str | pathlib.Path | None = None,
             tuned_config: TunedConfig | dict | str | pathlib.Path | None
             = None) -> "VectorStore":
        """Reload a saved store for serving and repair — **not insertion**.

        ``compressed``/``pq_m``/``pq_ks``/``rerank`` enable the PQ-resident
        hot path on the loaded store (codes are fitted and encoded at load
        time).  ``memmap_dir`` spills the raw vectors next to the snapshot
        and serves them disk-resident (see
        :func:`repro.io.load_index`); combined with ``compressed`` the
        steady-state footprint is codes + graph, not vectors.

        The loaded graph is a :class:`~repro.io.FrozenIndex`: search,
        :meth:`observe`-driven repair, :meth:`delete`, and further
        :meth:`save` calls all work, but :meth:`add` raises
        ``RuntimeError`` because the frozen graph lacks the original
        builder's insert machinery (layer assignments and per-node
        construction state are not serialized).  To keep inserting into a
        persisted store, use the durability layer instead: construct with
        ``wal_dir=`` and restart via :func:`repro.durability.recover`,
        which rebuilds an insert-capable index from snapshot + WAL.
        """
        path = pathlib.Path(path)
        frozen = load_index(path, memmap_dir=memmap_dir)
        store = cls(dim=frozen.dc.dim, metric=frozen.dc.metric,
                    fix_config=fix_config, serving=serving,
                    compressed=compressed, pq_m=pq_m, pq_ks=pq_ks,
                    rerank=rerank, tuned_config=tuned_config)
        payloads = {}
        sidecar = path.with_suffix(".payloads.json")
        if sidecar.exists():
            payloads = {int(k): v for k, v in
                        json.loads(sidecar.read_text()).items()}
        store._adopt_index(frozen, payloads)
        return store
