"""Seed robustness — the headline ordering is not a lucky draw.

Not a paper figure: a reproduction-quality check.  The Fig.-8 ordering
(NGFix* needs the least work at high recall) is re-measured on three
independently generated datasets (different seeds), and the per-query recall
lift of fixing is tested with a paired bootstrap on each.
"""

from repro import FixConfig, HNSW, NGFixer, RoarGraph
from repro.evalx import (
    compute_ground_truth,
    ndc_at_recall,
    paired_bootstrap_diff,
    sweep,
)
from repro.evalx.metrics import recall_per_query
from repro.datasets import load_dataset

import numpy as np

from workbench import EFS, FIX_PARAMS, HNSW_PARAMS, K, ROAR_PARAMS, record

NAME = "laion-sim"
SEEDS = (11, 23, 47)
TARGET = 0.95


def test_seed_robustness(benchmark):
    rows = []
    orderings_hold = 0
    lifts = []
    last_fixer = None
    for seed in SEEDS:
        ds = load_dataset(NAME, seed=seed, scale=0.4)
        gt = compute_ground_truth(ds.base, ds.test_queries, K, ds.metric)

        hnsw = HNSW(ds.base, ds.metric, **HNSW_PARAMS)
        fixer = NGFixer(hnsw.clone(), FixConfig(**FIX_PARAMS))
        fixer.fit(ds.train_queries)
        roar = RoarGraph(ds.base, ds.metric, ds.train_queries, **ROAR_PARAMS)
        last_fixer, last_queries = fixer, ds.test_queries

        ndc = {
            "NGFix*": ndc_at_recall(sweep(fixer, ds.test_queries, gt, K, EFS), TARGET),
            "HNSW": ndc_at_recall(sweep(hnsw, ds.test_queries, gt, K, EFS), TARGET),
            "RoarGraph": ndc_at_recall(sweep(roar, ds.test_queries, gt, K, EFS), TARGET),
        }
        holds = (ndc["NGFix*"] is not None
                 and all(ndc[r] is None or ndc["NGFix*"] <= 1.1 * ndc[r]
                         for r in ("HNSW", "RoarGraph")))
        orderings_hold += holds

        # paired per-query recall lift at a fixed ef
        ef = 2 * K
        before = np.vstack([hnsw.search(q, k=K, ef=ef).ids[:K]
                            for q in ds.test_queries])
        after = np.vstack([fixer.search(q, k=K, ef=ef).ids[:K]
                           for q in ds.test_queries])
        boot = paired_bootstrap_diff(
            recall_per_query(after, gt.ids),
            recall_per_query(before, gt.ids), seed=0)
        lifts.append(boot)
        rows.append((seed,
                     *[round(ndc[l], 1) if ndc[l] else None
                       for l in ("NGFix*", "RoarGraph", "HNSW")],
                     holds, round(boot["diff"], 4),
                     f"[{boot['ci_low']:.3f},{boot['ci_high']:.3f}]",
                     boot["significant"]))
    record(
        "seed_robustness",
        f"headline ordering across dataset seeds ({NAME}, scale 0.4, "
        f"NDC at recall@{K}={TARGET})",
        ["seed", "NGFix* NDC", "Roar NDC", "HNSW NDC", "ordering holds",
         "recall lift (paired)", "95% CI", "significant"],
        rows,
        notes="reproduction-quality check: not a paper figure",
    )
    assert orderings_hold == len(SEEDS), "ordering must hold for every seed"
    assert all(b["diff"] > 0 for b in lifts), "fixing lifts recall on every seed"
    assert sum(b["significant"] for b in lifts) >= 2, (
        "the lift should be statistically significant on most seeds")

    state = {"i": 0}

    def op():
        q = last_queries[state["i"] % len(last_queries)]
        state["i"] += 1
        return last_fixer.search(q, k=K, ef=2 * K)
    benchmark(op)
