"""Sec. 7 — hash-table answer cache for repeated queries.

Paper (MainSearch): when test queries exactly repeat historical ones, an
MD5-keyed hash table returns the stored ground truth at ~9.3% of the
graph-search latency; it cannot generalize to unseen queries and costs
memory per stored answer.
"""

import time


from repro.core import CachedSearcher, HashTableCache
from repro.evalx import compute_ground_truth

from workbench import K, get_dataset, get_fixed, record

NAME = "mainsearch-sim"
EF = 45


def test_sec7_hash_cache(benchmark):
    ds = get_dataset(NAME)
    fixer = get_fixed(NAME)
    gt_train = compute_ground_truth(ds.base, ds.train_queries, K, ds.metric)
    searcher = CachedSearcher(fixer, HashTableCache(algorithm="md5"))
    searcher.warm(ds.train_queries, gt_train.ids, gt_train.distances)

    # Repeated workload: historical queries arrive again verbatim.
    def run(queries, use_cache):
        start = time.perf_counter()
        for q in queries:
            if use_cache:
                searcher.search(q, k=K, ef=EF)
            else:
                fixer.search(q, k=K, ef=EF)
        return (time.perf_counter() - start) / len(queries)

    repeated = ds.train_queries[:100]
    t_graph = run(repeated, use_cache=False)
    searcher.cache.hits = searcher.cache.misses = 0
    t_cache = run(repeated, use_cache=True)
    hit_rate_repeated = searcher.cache.hits / 100

    # Unseen workload: cache cannot help.
    searcher.cache.hits = searcher.cache.misses = 0
    run(ds.test_queries[:50], use_cache=True)
    hit_rate_unseen = searcher.cache.hits / 50

    ratio = t_cache / t_graph
    rows = [
        ("graph search (repeated queries)", round(t_graph * 1e6, 1), 0.0),
        ("hash cache (repeated queries)", round(t_cache * 1e6, 1),
         hit_rate_repeated),
        ("hash cache (unseen queries)", None, hit_rate_unseen),
        ("cache memory bytes", searcher.cache.memory_bytes(), None),
        ("latency ratio cache/graph", round(ratio, 4), None),
    ]
    record(
        "sec7_hash_cache", f"hash-table cache on repeated queries ({NAME})",
        ["row", "us/query or bytes", "hit rate"],
        rows,
        notes="paper Sec.7: cached answers cost a small fraction of graph "
              "search (~9% there); zero generalization to unseen queries",
    )
    assert hit_rate_repeated == 1.0
    assert hit_rate_unseen == 0.0
    assert ratio < 0.35, "cache hits must be far cheaper than graph search"
    benchmark(lambda: searcher.search(repeated[0], k=K, ef=EF))
