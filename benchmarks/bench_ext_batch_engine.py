"""Extension — batched query execution engine throughput.

The lock-step batch engine (repro.graphs.search.BatchSearchEngine) advances
beam search for a block of queries together, coalescing every per-hop
neighbor evaluation into one vectorized distance call.  This bench measures
sequential vs batched QPS on laion-sim at ef=100 and checks the bit-level
equivalence contract on the side.  Results also land in
``BENCH_batch_engine.json`` at the repo root.
"""

import json
import pathlib
import time

import numpy as np

from workbench import K, get_dataset, get_hnsw, record

NAME = "laion-sim"
EF = 100
N_QUERIES = 500
BATCH_SIZES = [64, 256, 500]
TARGET_SPEEDUP = 3.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"


def _queries(ds):
    qs = np.concatenate([ds.test_queries, ds.train_queries])[:N_QUERIES]
    return np.ascontiguousarray(qs, dtype=np.float32)


def _pad(results, k):
    ids = np.full((len(results), k), -1, dtype=np.int64)
    dists = np.full((len(results), k), np.inf)
    for i, r in enumerate(results):
        m = min(k, len(r.ids))
        ids[i, :m] = r.ids[:m]
        dists[i, :m] = r.distances[:m]
    return ids, dists


def test_ext_batch_engine(benchmark):
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)
    queries = _queries(ds)

    # Warm caches (neighbor arrays, engine allocation) outside the timers.
    seq_results = [index.search(q, k=K, ef=EF) for q in queries]
    index.search_batch(queries, k=K, ef=EF, batch_size=BATCH_SIZES[0])

    start = time.perf_counter()
    seq_results = [index.search(q, k=K, ef=EF) for q in queries]
    seq_qps = len(queries) / (time.perf_counter() - start)
    seq_ids, seq_dists = _pad(seq_results, K)

    rows = [("sequential", 1, round(seq_qps, 1), 1.0)]
    results_json = {
        "dataset": NAME, "n_queries": len(queries), "k": K, "ef": EF,
        "sequential_qps": round(seq_qps, 1), "batched": [],
    }
    best_speedup = 0.0
    for bs in BATCH_SIZES:
        start = time.perf_counter()
        batch_results = index.search_batch(queries, k=K, ef=EF, batch_size=bs)
        qps = len(queries) / (time.perf_counter() - start)
        bat_ids, bat_dists = _pad(batch_results, K)
        # Bit-level equivalence contract: same ids, same distances.
        np.testing.assert_array_equal(bat_ids, seq_ids)
        np.testing.assert_array_equal(bat_dists, seq_dists)
        speedup = qps / seq_qps
        best_speedup = max(best_speedup, speedup)
        rows.append((f"batched bs={bs}", bs, round(qps, 1), round(speedup, 2)))
        results_json["batched"].append(
            {"batch_size": bs, "qps": round(qps, 1),
             "speedup": round(speedup, 2)})

    results_json["best_speedup"] = round(best_speedup, 2)
    JSON_PATH.write_text(json.dumps(results_json, indent=2) + "\n")

    record(
        "ext_batch_engine",
        f"batched vs sequential beam search ({NAME}, ef={EF})",
        ["mode", "batch size", "qps", "speedup"],
        rows,
        notes="lock-step batch engine; results bit-identical to sequential "
              "search (asserted above); JSON copy at BENCH_batch_engine.json",
    )
    assert best_speedup >= TARGET_SPEEDUP, (
        f"batched engine speedup {best_speedup:.2f}x below "
        f"{TARGET_SPEEDUP}x target")
    best_bs = max(results_json["batched"], key=lambda r: r["speedup"])
    benchmark(lambda: index.search_batch(
        queries, k=K, ef=EF, batch_size=best_bs["batch_size"]))
