"""Fig. 12 — effect of the historical-query-set size.

Paper: NGFix* performance grows with history size but saturates early — it
matches RoarGraph-10M using only 8-30% of the history, and a lightly-built
HNSW with NGFix* reaches a heavily-built HNSW's quality with history equal
to 1% of the base size.  The rightmost panel trades index size against QPS.

Reproduced: QPS at fixed recall across history fractions for NGFix* vs full-
history RoarGraph and plain HNSW, plus index-size rows.
"""

from repro.evalx import qps_at_recall

from workbench import (
    K,
    get_dataset,
    get_fixed,
    get_hnsw,
    get_roargraph,
    record,
    search_op,
    sweep_index,
)

NAME = "text2image-sim"
FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)
TARGET = 0.95


def test_fig12_history_size(benchmark):
    roar_qps = qps_at_recall(sweep_index(get_roargraph(NAME), NAME), TARGET)
    hnsw_qps = qps_at_recall(sweep_index(get_hnsw(NAME), NAME), TARGET)

    rows = [("HNSW (no history)", 0, round(hnsw_qps, 1) if hnsw_qps else None,
             get_hnsw(NAME).stats()["index_size_bytes"]),
            ("RoarGraph (full history)", len(get_dataset(NAME).train_queries),
             round(roar_qps, 1) if roar_qps else None,
             get_roargraph(NAME).stats()["index_size_bytes"])]
    qps_by_fraction = {}
    for fraction in FRACTIONS:
        fixer = get_fixed(NAME, history_fraction=fraction)
        qps = qps_at_recall(sweep_index(fixer, NAME), TARGET)
        qps_by_fraction[fraction] = qps
        n_hist = int(fraction * len(get_dataset(NAME).train_queries))
        rows.append((f"HNSW-NGFix* ({int(fraction*100)}% history)", n_hist,
                     round(qps, 1) if qps else None,
                     fixer.stats()["index_size_bytes"]))
    record(
        "fig12", f"QPS at recall@{K}={TARGET} vs history size ({NAME})",
        ["index", "n-history", "QPS", "index-bytes"],
        rows,
        notes="paper Fig.12: NGFix* matches RoarGraph with a fraction of its history",
    )

    full = qps_by_fraction[1.0]
    assert full is not None
    # More history never hurts much (monotone-ish improvement).
    assert full >= 0.9 * max(q for q in qps_by_fraction.values() if q)
    # A fraction of the history already matches the baselines.
    if roar_qps:
        smallest_matching = min(
            (f for f, q in qps_by_fraction.items() if q and q >= 0.9 * roar_qps),
            default=None)
        assert smallest_matching is not None and smallest_matching <= 0.5, (
            "NGFix* should match RoarGraph with at most half its history")
    if hnsw_qps:
        assert full >= 0.95 * hnsw_qps
    benchmark(search_op(get_fixed(NAME), NAME))
