"""Extension — gray-failure resilience: hedges, breakers, admission control.

Three arms, results merged into ``BENCH_resilience.json`` at the repo root:

- **Tail latency under a gray replica**: one replica of a 2-shard x 2-replica
  cluster is made slow-but-alive (a ``worker.pre_reply`` delay at 50x the
  healthy p50, floored at 80 ms).  An unhedged router (sequential replica
  use, breakers off) pays the delay on every round-robin pick of the gray
  replica; the resilient router hedges the read after the replica's
  EWMA-tracked p95 and lets its breaker route around the replica once it
  keeps losing.  The gate is the p99 ratio at equal recall@10.
- **Breaker re-admission**: with the fault armed the victim's breaker
  trips OPEN; after ``disarm_faults`` the next due half-open probe must
  re-admit the replica — state back to CLOSED, at least one counted
  re-admit, and **zero respawns** (recovery by probing, not by process
  replacement).
- **Front-door admission + brownout**: a burst of concurrent clients
  against a bounded front door.  Excess arrivals shed with the typed
  ``Overloaded`` (queue depth never exceeds the bound), sustained pressure
  browns the door out (reduced-``ef`` blocks, results marked degraded),
  and once the burst passes the hysteresis exits brownout and serving
  returns to full-effort non-degraded answers.

Running the file directly (``python benchmarks/bench_ext_resilience.py``)
performs the CI smoke pass at whatever ``REPRO_BENCH_SCALE`` is set:
every arm runs with loosened-but-real gates, no JSON.
"""

import asyncio
import atexit
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import BENCH_SCALE, K, get_dataset, get_gt, record
from repro.cluster import (
    BrownoutController,
    ClusterRouter,
    FrontDoor,
    Overloaded,
    WORKER_PRE_REPLY_POINT,
)
from repro.cluster import resilience

NAME = "laion-sim"
BUILD = dict(M=12, ef_construction=60, seed=3)
N_SHARDS = 2
N_REPLICAS = 2
EF = 30
WARM_SEARCHES = 35           # prime every replica's tracker past warmup
TAIL_SEARCHES = 80           # per arm; the unhedged arm eats the delay
DELAY_FACTOR = 50.0          # gray delay = 50x healthy p50 ...
DELAY_FLOOR_S = 0.08         # ... but at least this (tiny-scale graphs)

# Deterministic breaker timing so the re-admission arm is not at the mercy
# of jitter: capped backoff bounds the post-disarm probe wait.
BREAKER = dict(backoff_base_s=0.4, backoff_factor=2.0, backoff_cap_s=0.8,
               jitter=0.0, probe_timeout_s=0.1)

TARGET_P99_RATIO = 3.0       # hedged must beat unhedged p99 by 3x
SMOKE_P99_RATIO = 2.0        # CI-scale floor (tiny graphs, noisy timing)
RECALL_BAND = 0.01           # the tail win may not buy recall

FD_MAX_QUEUE = 24
FD_MAX_BATCH = 8
FD_ROUNDS = 3                # bursts of concurrent clients
FD_BURST = 60                # arrivals per burst (>> max_queue: must shed)
FD_LIGHT = 12                # sequential queries after the burst passes

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _queries(ds):
    return np.ascontiguousarray(ds.test_queries, dtype=np.float32)


def _recall_seq(results, gt_ids, idxs):
    """recall@K for results answering queries[idxs] (cycling indices)."""
    hits = 0
    for r, qi in zip(results, idxs):
        hits += len(set(r.ids[:K].tolist()) & set(gt_ids[qi, :K].tolist()))
    return hits / (len(results) * K)


def _warm(router, queries, n=WARM_SEARCHES):
    for i in range(n):
        router.search_batch(queries[i % len(queries):][:1], K, EF)


def _arm_delay(handle, delay_s):
    handle.rpc({"op": "arm_faults", "rules": [
        {"point": WORKER_PRE_REPLY_POINT, "action": "delay",
         "every": True, "delay_s": delay_s}]})


def _tail_run(router, queries, n=TAIL_SEARCHES):
    """n single-query searches; returns (latencies_s, results, idxs)."""
    nq = queries.shape[0]
    lat, results, idxs = [], [], []
    for i in range(n):
        qi = i % nq
        t0 = time.perf_counter()
        r = router.search_batch(queries[qi:qi + 1], K, EF)[0]
        lat.append(time.perf_counter() - t0)
        results.append(r)
        idxs.append(qi)
    return np.asarray(lat), results, idxs


# -- shared fixtures (routers are processes; build once, reap at exit) -------

_ROUTERS: dict = {}


def _get_router(kind: str) -> ClusterRouter:
    """'resilient' (hedge + breakers) or 'plain' (neither) router."""
    if kind not in _ROUTERS:
        ds = get_dataset(NAME)
        kwargs = (dict(hedge=True, breaker_config=dict(BREAKER))
                  if kind == "resilient"
                  else dict(hedge=False, breaker_config={"enabled": False}))
        router = ClusterRouter(ds.base.shape[1], ds.metric,
                               n_shards=N_SHARDS, n_replicas=N_REPLICAS,
                               **BUILD, **kwargs)
        router.load(ds.base)
        _ROUTERS[kind] = router
    return _ROUTERS[kind]


def _reap():
    for router in _ROUTERS.values():
        router.close()
    _ROUTERS.clear()


atexit.register(_reap)


def _victim(router):
    return router.handles[0][0]


def _disarm(router):
    """Disarm the gray fault on every replica that carries one."""
    _victim(router).rpc({"op": "disarm_faults"})


# -- arm 1: tail latency under a gray replica --------------------------------

def run_tail():
    """Hedged vs unhedged p99 against a 50x-delayed replica, equal recall."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    queries = _queries(ds)

    resilient = _get_router("resilient")
    plain = _get_router("plain")
    _warm(resilient, queries)
    _warm(plain, queries)

    # Healthy operating point (and the hedge delay the tracker learned).
    healthy_lat, healthy_results, healthy_idx = _tail_run(
        resilient, queries, n=min(TAIL_SEARCHES, 40))
    healthy_p50 = float(np.percentile(healthy_lat, 50))
    delay_s = max(DELAY_FACTOR * healthy_p50, DELAY_FLOOR_S)

    _arm_delay(_victim(resilient), delay_s)
    hedged_lat, hedged_results, hedged_idx = _tail_run(resilient, queries)
    hedges = resilient.n_hedges
    hedge_wins = resilient.n_hedge_wins
    trips = resilient.router_stats()["breaker_trips"]

    _arm_delay(_victim(plain), delay_s)
    plain_lat, plain_results, plain_idx = _tail_run(plain, queries)
    _disarm(plain)
    _disarm(resilient)

    def pcts(lat):
        return {p: round(float(np.percentile(lat, p)) * 1e3, 2)
                for p in (50, 95, 99)}

    hedged_p99 = float(np.percentile(hedged_lat, 99))
    plain_p99 = float(np.percentile(plain_lat, 99))
    return {
        "n_searches": TAIL_SEARCHES,
        "ef": EF,
        "healthy_p50_ms": round(healthy_p50 * 1e3, 2),
        "delay_ms": round(delay_s * 1e3, 1),
        "delay_factor": DELAY_FACTOR,
        "healthy_ms": pcts(healthy_lat),
        "hedged_ms": pcts(hedged_lat),
        "unhedged_ms": pcts(plain_lat),
        "p99_ratio": round(plain_p99 / hedged_p99, 2),
        "hedges": hedges,
        "hedge_wins": hedge_wins,
        "breaker_trips": trips,
        "recall_healthy": round(
            _recall_seq(healthy_results, gt.ids, healthy_idx), 4),
        "recall_hedged": round(
            _recall_seq(hedged_results, gt.ids, hedged_idx), 4),
        "recall_unhedged": round(
            _recall_seq(plain_results, gt.ids, plain_idx), 4),
        "hedged_degraded": sum(r.degraded for r in hedged_results),
    }


# -- arm 2: breaker trips under fault, probe re-admits after disarm ----------

def run_breaker():
    """OPEN under the gray fault; CLOSED again via probe, zero respawns."""
    ds = get_dataset(NAME)
    queries = _queries(ds)
    router = _get_router("resilient")
    victim = _victim(router)
    breaker = victim.breaker

    _warm(router, queries, n=10)  # trackers warm if this arm runs alone
    _arm_delay(victim, DELAY_FLOOR_S)

    # Drive until the breaker is observably OPEN.  Probe cycles may
    # transiently re-admit the gray replica (its reply does arrive, just
    # late); the latency/outpace failures re-trip it within a few picks.
    for i in range(60):
        if breaker.state == resilience.OPEN:
            break
        router.search_batch(queries[i % len(queries):][:1], K, EF)
    state_under_fault = breaker.state
    trips_under_fault = breaker.n_trips
    readmits_before = router.router_stats()["breaker_readmits"]
    respawns_before = router.n_respawns

    _disarm(router)
    time.sleep(BREAKER["backoff_cap_s"] + 0.25)  # let the backoff elapse

    # Serve: the due probe is sent on one pick, its reply checked on a
    # later one; a handful of searches is enough to close the loop.
    t0 = time.perf_counter()
    for i in range(100):
        if breaker.state == resilience.CLOSED:
            break
        router.search_batch(queries[i % len(queries):][:1], K, EF)
        time.sleep(0.02)
    readmit_s = time.perf_counter() - t0

    stats = router.router_stats()
    post = [router.search_batch(queries[i:i + 1], K, EF)[0]
            for i in range(8)]
    return {
        "state_under_fault": state_under_fault,
        "trips_under_fault": trips_under_fault,
        "state_after_disarm": breaker.state,
        "readmits_after_disarm":
            stats["breaker_readmits"] - readmits_before,
        "readmit_seconds": round(readmit_s, 3),
        "respawns_during_readmit": router.n_respawns - respawns_before,
        "respawns_total": router.n_respawns,
        "live_replicas": router.live_replicas(),
        "post_degraded": sum(r.degraded for r in post),
        "backoff_cap_s": BREAKER["backoff_cap_s"],
    }


# -- arm 3: front-door admission control + brownout --------------------------

async def _drive_frontdoor(door, queries):
    """Burst rounds (must shed + brown out), then a light sequential tail."""
    nq = queries.shape[0]
    served, shed, degraded = 0, 0, 0

    async def one(i):
        nonlocal served, shed, degraded
        try:
            r = await door.search(queries[i % nq])
        except Overloaded:
            shed += 1
            return
        served += 1
        degraded += bool(r.degraded)

    for rnd in range(FD_ROUNDS):
        await asyncio.gather(*(one(rnd * FD_BURST + i)
                               for i in range(FD_BURST)))
    overload = {"served": served, "shed": shed, "degraded": degraded,
                "brownout_entered": door._brownout.n_entries >= 1}

    light = []
    for i in range(FD_LIGHT):
        light.append(await door.search(queries[i % nq]))
        await asyncio.sleep(0.005)
    await door.drain()
    return overload, light


def run_frontdoor():
    """Bounded shed under burst, brownout in, hysteretic recovery out."""
    ds = get_dataset(NAME)
    queries = _queries(ds)
    router = _get_router("resilient")
    router.search_batch(queries[:8], K, EF)  # warm

    door = FrontDoor(router, window_ms=1.0, max_batch=FD_MAX_BATCH, k=K,
                     ef=EF, max_queue=FD_MAX_QUEUE, executor_workers=1,
                     brownout=BrownoutController(
                         enter_score=0.5, exit_score=0.2,
                         enter_after=2, exit_after=2))
    overload, light = asyncio.run(_drive_frontdoor(door, queries))
    stats = door.stats()
    tail = light[-5:]
    return {
        "rounds": FD_ROUNDS,
        "burst": FD_BURST,
        "max_queue": FD_MAX_QUEUE,
        "served": overload["served"],
        "shed": overload["shed"],
        "degraded_during_overload": overload["degraded"],
        "brownout_entered": overload["brownout_entered"],
        "brownout_blocks": stats["brownout_blocks"],
        "max_depth_seen": stats["max_depth_seen"],
        "brownout_active_after_light": stats["brownout"]["active"],
        "brownout_exits": stats["brownout"]["exits"],
        "light_tail_degraded": sum(r.degraded for r in tail),
    }


# -- JSON merge ---------------------------------------------------------------

def _merge_json(update: dict):
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.update(update)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# -- gates --------------------------------------------------------------------

def _assert_tail(results, ratio_floor):
    assert results["hedges"] > 0, "the gray replica was never hedged"
    assert results["hedge_wins"] > 0, "no hedge ever won"
    assert results["hedged_degraded"] == 0, (
        "hedged serving degraded under a single gray replica")
    assert results["p99_ratio"] >= ratio_floor, (
        f"hedged p99 only {results['p99_ratio']}x better than unhedged, "
        f"need {ratio_floor}x (hedged {results['hedged_ms'][99]} ms vs "
        f"unhedged {results['unhedged_ms'][99]} ms)")
    gap = abs(results["recall_hedged"] - results["recall_unhedged"])
    assert gap <= RECALL_BAND, (
        f"hedged and unhedged recall diverge by {gap:.4f} "
        f"(> {RECALL_BAND}); the tail win must not change answers")


def _assert_breaker(results):
    assert results["trips_under_fault"] >= 1, (
        "the breaker never tripped under the gray fault")
    assert results["state_after_disarm"] == resilience.CLOSED, (
        f"breaker still {results['state_after_disarm']} after disarm")
    assert results["readmits_after_disarm"] >= 1, (
        "recovery happened without a counted probe re-admit")
    assert results["respawns_during_readmit"] == 0, (
        "re-admission leaned on a respawn; probes must recover gray "
        "replicas without process replacement")
    assert results["post_degraded"] == 0


def _assert_frontdoor(results):
    assert results["shed"] > 0, "the burst never hit the admission bound"
    assert results["max_depth_seen"] <= results["max_queue"], (
        f"queue depth {results['max_depth_seen']} exceeded the "
        f"{results['max_queue']} bound")
    assert results["brownout_entered"], (
        "sustained overload never browned the door out")
    assert results["brownout_blocks"] >= 1
    assert results["degraded_during_overload"] >= 1, (
        "browned-out blocks must mark their results degraded")
    assert not results["brownout_active_after_light"], (
        "brownout never exited after the burst passed")
    assert results["light_tail_degraded"] == 0, (
        "post-recovery serving still returns degraded answers")


# -- pytest entries ----------------------------------------------------------

def test_ext_resilience_tail(benchmark):
    results = run_tail()
    rows = [
        ("healthy (hedged router)", results["healthy_ms"][50],
         results["healthy_ms"][95], results["healthy_ms"][99],
         results["recall_healthy"]),
        (f"unhedged + {results['delay_ms']}ms gray replica",
         results["unhedged_ms"][50], results["unhedged_ms"][95],
         results["unhedged_ms"][99], results["recall_unhedged"]),
        (f"hedged + {results['delay_ms']}ms gray replica",
         results["hedged_ms"][50], results["hedged_ms"][95],
         results["hedged_ms"][99], results["recall_hedged"]),
        ("p99 ratio (unhedged/hedged)", "-", "-",
         results["p99_ratio"], "-"),
    ]
    record(
        "ext_resilience_tail",
        f"hedged reads vs a gray replica ({N_SHARDS}x{N_REPLICAS}, {NAME})",
        ["arm", "p50 ms", "p95 ms", "p99 ms", f"recall@{K}"],
        rows,
        notes=f"one replica delayed {results['delay_factor']}x the healthy "
              f"p50 via worker.pre_reply; hedge fires at the EWMA p95, "
              f"breaker trips after repeated losses ({results['hedges']} "
              f"hedges, {results['hedge_wins']} wins, "
              f"{results['breaker_trips']} trips); JSON copy at "
              f"BENCH_resilience.json",
    )
    _merge_json({"dataset": NAME, "k": K, "scale": BENCH_SCALE,
                 "tail": results})
    _assert_tail(results, TARGET_P99_RATIO)
    ds = get_dataset(NAME)
    queries = _queries(ds)
    router = _get_router("resilient")
    benchmark(lambda: router.search_batch(queries[:1], K, EF))


def test_ext_resilience_breaker():
    results = run_breaker()
    record(
        "ext_resilience_breaker",
        "breaker trips OPEN under fault, half-open probe re-admits",
        ["metric", "value"],
        [(key, results[key]) for key in results],
        notes="gray fault disarmed remotely; after the capped backoff the "
              "due probe re-admits the replica with zero respawns",
    )
    _merge_json({"breaker": results})
    _assert_breaker(results)


def test_ext_resilience_frontdoor():
    results = run_frontdoor()
    record(
        "ext_resilience_frontdoor",
        "front-door admission: bounded shed, brownout, hysteretic recovery",
        ["metric", "value"],
        [(key, results[key]) for key in results],
        notes=f"{FD_ROUNDS} bursts of {FD_BURST} concurrent clients against "
              f"max_queue={FD_MAX_QUEUE}; excess sheds typed Overloaded, "
              f"sustained pressure serves degraded reduced-ef blocks, "
              f"light tail recovers non-degraded",
    )
    _merge_json({"frontdoor": results})
    _assert_frontdoor(results)


def main():
    """CI smoke: every arm at REPRO_BENCH_SCALE, loosened gates, no JSON."""
    start = time.perf_counter()
    tail = run_tail()
    print(f"tail     : hedged {tail['hedged_ms']} vs unhedged "
          f"{tail['unhedged_ms']} (ratio {tail['p99_ratio']}x, "
          f"{tail['hedges']} hedges/{tail['hedge_wins']} wins)")
    _assert_tail(tail, SMOKE_P99_RATIO)

    breaker = run_breaker()
    print(f"breaker  : {breaker}")
    _assert_breaker(breaker)

    frontdoor = run_frontdoor()
    print(f"frontdoor: {frontdoor}")
    _assert_frontdoor(frontdoor)
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(tail + breaker + frontdoor gates at smoke thresholds)")


if __name__ == "__main__":
    main()
