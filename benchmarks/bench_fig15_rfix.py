"""Fig. 15 — contribution of RFix on top of NGFix.

Paper: NGFix* (= NGFix + RFix) improves over NGFix alone by ~18% at
recall 0.95 on MainSearch, where many searches fail to reach the query
vicinity; on LAION the phase-1 failure rate is tiny and the gain is
correspondingly small.
"""

import pytest

from repro.core import FixConfig, NGFixer
from repro.core.analysis import phase_reach_stats
from repro.evalx import ndc_at_recall, qps_at_recall

from workbench import (
    FIX_PARAMS,
    K,
    get_dataset,
    get_gt,
    get_hnsw,
    record,
    search_op,
    sweep_index,
)

NAMES = ("mainsearch-sim", "laion-sim")


@pytest.mark.parametrize("name", NAMES)
def test_fig15_rfix_contribution(benchmark, name):
    ds = get_dataset(name)
    target = 0.95

    arms = {}
    for rfix, label in ((True, "NGFix*"), (False, "NGFix")):
        params = dict(FIX_PARAMS)
        params["rfix"] = rfix
        fixer = NGFixer(get_hnsw(name).clone(), FixConfig(**params))
        fixer.fit(ds.train_queries)
        arms[label] = fixer

    base_reach = phase_reach_stats(get_hnsw(name), ds.test_queries,
                                   get_gt(name), k=K,
                                   ef=K)["reached_vicinity_fraction"]
    rows = []
    ndc = {}
    for label, fixer in arms.items():
        points = sweep_index(fixer, name)
        qps = qps_at_recall(points, target)
        ndc[label] = ndc_at_recall(points, target)
        rfix_edges = sum(r.rfix_edges for r in fixer.records)
        rfix_needed = sum(r.rfix_needed for r in fixer.records)
        rows.append((label, round(qps, 1) if qps else None,
                     round(ndc[label], 1) if ndc[label] else None,
                     rfix_needed, rfix_edges))
    record(
        f"fig15_{name}",
        f"NGFix vs NGFix* ({name}; base phase-1 success {base_reach:.3f})",
        ["variant", f"QPS@{target}", f"NDC@{target}", "queries needing RFix",
         "RFix edges"],
        rows,
        notes="paper Fig.15: RFix helps most where phase-1 failures are "
              "common; at this scale failures are rare (see phase-1 rate), "
              "so the gain is small as in the paper's LAION case",
    )
    # RFix never hurts the work-at-recall budget (NDC is the stable axis;
    # QPS jitters between in-process arms).
    if ndc["NGFix*"] and ndc["NGFix"]:
        assert ndc["NGFix*"] <= 1.05 * ndc["NGFix"], "RFix must not hurt"
    benchmark(search_op(arms["NGFix*"], name))
