"""Sec. 7 — adapting to workload drift (selection strategy for history).

Paper: under dynamic workloads, extra-degree budgets fill with edges serving
the old workload; the remedy is to periodically delete a subset of extra
edges and prioritize the newest queries when re-fixing.  (The paper reports
~10% of newer-period production queries sit far from the older workload.)

Reproduced: a three-phase drifting stream; an index fixed on phase-0 history
only (static, RoarGraph-like behavior — it would need a rebuild) vs the
same index run through :class:`WorkloadAdapter` while serving phases 1-2.
"""

import numpy as np

from repro import FixConfig, HNSW, NGFixer, WorkloadAdapter
from repro.datasets import CrossModalConfig, make_drifting_workload
from repro.evalx import compute_ground_truth, recall_at_k

from workbench import BENCH_SEED, HNSW_PARAMS, K, record, timed


def _recall(fixer, queries, base, metric, ef):
    gt = compute_ground_truth(base, queries, K, metric)
    found = np.vstack([fixer.search(q, k=K, ef=ef).ids[:K] for q in queries])
    return recall_at_k(found, gt.ids)


def test_sec7_workload_drift(benchmark):
    config = CrossModalConfig(n_base=1500, dim=32, n_clusters=14,
                              cluster_std=0.14, gap_scale=1.0,
                              query_spread=0.45, n_facets=2, seed=BENCH_SEED)
    drift = make_drifting_workload(config, n_phases=3, queries_per_phase=120,
                                   drift_per_phase=0.6)
    ef = 2 * K

    def fresh():
        base = HNSW(drift.base, drift.metric, **HNSW_PARAMS)
        fixer = NGFixer(base, FixConfig(k=K, preprocess="approx",
                                        max_extra_degree=12))
        fixer.fit(drift.phases[0])
        return fixer

    static = fresh()
    adapted = fresh()
    adapter = WorkloadAdapter(adapted, refresh_interval=60, window=60,
                              refresh_drop_fraction=0.2, seed=0)
    t_adapt, _ = timed(lambda: (adapter.observe_batch(drift.phases[1]),
                                adapter.observe_batch(drift.phases[2])))

    rows = []
    gains = {}
    for phase in (0, 1, 2):
        r_static = _recall(static, drift.phases[phase], drift.base,
                           drift.metric, ef)
        r_adapted = _recall(adapted, drift.phases[phase], drift.base,
                            drift.metric, ef)
        gains[phase] = r_adapted - r_static
        rows.append((phase, round(drift.gap_angles[phase], 2),
                     round(r_static, 4), round(r_adapted, 4)))
    rows.append(("adaptation cost", None, None, round(t_adapt, 3)))
    record(
        "sec7_drift", f"workload drift: static vs adapted (recall@{K}, ef={ef})",
        ["phase", "gap angle (rad)", "static (phase-0 history)",
         "adapted (online + refresh)"],
        rows,
        notes="paper Sec.7: periodic extra-edge refresh with newest-first "
              "re-fixing tracks the drifting workload without a rebuild",
    )
    # Adaptation must help the most-drifted phase and never hurt phase 0
    # badly (its edges may be partially recycled).
    assert gains[2] > 0.01, "adaptation should lift the drifted phase"
    assert gains[0] > -0.05
    benchmark(lambda: adapted.search(drift.phases[2][0], k=K, ef=ef))
