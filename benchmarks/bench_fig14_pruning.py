"""Fig. 14 — extra-edge eviction (pruning) strategies under a tight budget.

Paper: when the extra-degree budget forces eviction, EH-guided pruning wins,
random is intermediate, and MRNG pruning performs worst — the RNG rule
preferentially drops long edges, which are exactly the ones hard queries
need (their NNs scatter across regions).
"""

from repro.core import FixConfig, NGFixer
from repro.evalx import ndc_at_recall, qps_at_recall

from workbench import (
    FIX_PARAMS,
    get_dataset,
    get_hnsw,
    record,
    search_op,
    sweep_index,
)

NAME = "laion-sim"
TIGHT_BUDGET = 3  # small enough that eviction actually fires


def test_fig14_eviction_strategies(benchmark):
    ds = get_dataset(NAME)
    target = 0.95
    rows = []
    results = {}
    arms = {}
    for strategy in ("eh", "random", "mrng"):
        params = dict(FIX_PARAMS)
        params.update(max_extra_degree=TIGHT_BUDGET, evict_strategy=strategy)
        fixer = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
        fixer.fit(ds.train_queries)
        evictions = sum(r.edges_evicted for r in fixer.records)
        points = sweep_index(fixer, NAME)
        qps = qps_at_recall(points, target)
        ndc = ndc_at_recall(points, target)
        results[strategy] = (qps, ndc)
        arms[strategy] = fixer
        rows.append((strategy, round(qps, 1) if qps else None,
                     round(ndc, 1) if ndc else None, evictions,
                     fixer.adjacency.n_extra_edges()))
    record(
        "fig14", f"extra-edge eviction strategies at budget {TIGHT_BUDGET} "
        f"({NAME}, recall {target})",
        ["strategy", "QPS", "NDC/query", "evictions", "extra edges kept"],
        rows,
        notes="paper Fig.14: EH pruning > random > MRNG (MRNG drops the long "
              "edges hard queries need)",
    )
    assert rows[0][3] > 0, "budget must be tight enough to trigger eviction"
    eh_ndc = results["eh"][1]
    assert eh_ndc is not None
    for rival in ("random", "mrng"):
        if results[rival][1] is not None:
            assert eh_ndc <= 1.05 * results[rival][1], (
                f"EH pruning should need no more NDC than {rival}")
    benchmark(search_op(arms["eh"], NAME))
