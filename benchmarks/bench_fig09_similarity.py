"""Fig. 9 — performance vs. test-query similarity to the historical workload.

Paper: split LAION test queries by distance to the nearest historical query
(high/moderate/low similarity); the fixed index is fastest on high-similarity
queries, and the ef needed for a fixed recall grows as similarity drops —
the observation motivating the adaptive-ef strategy of Sec. 7.
"""

import numpy as np

from repro.core import AdaptiveSearcher
from repro.distances import pairwise_distances
from repro.evalx import compute_ground_truth, ef_for_recall, sweep

from workbench import K, EFS, get_dataset, get_fixed, record, search_op

NAME = "laion-sim"


def _similarity_split(ds):
    """Three query groups by distance to nearest historical query."""
    d = pairwise_distances(ds.test_queries, ds.train_queries, ds.metric).min(axis=1)
    lo, hi = np.quantile(d, [0.33, 0.66])
    groups = {
        "high-sim": ds.test_queries[d <= lo],
        "moderate-sim": ds.test_queries[(d > lo) & (d <= hi)],
        "low-sim": ds.test_queries[d > hi],
    }
    return groups, (lo, hi)


def test_fig09_similarity_levels(benchmark):
    ds = get_dataset(NAME)
    fixer = get_fixed(NAME)
    groups, cuts = _similarity_split(ds)
    target = 0.95
    rows = []
    efs_needed = {}
    for label, queries in groups.items():
        gt = compute_ground_truth(ds.base, queries, K, ds.metric)
        points = sweep(fixer, queries, gt, K, EFS)
        ef_needed = ef_for_recall(points, target)
        efs_needed[label] = ef_needed
        recall_at_2k = next(p.recall for p in points if p.ef == 2 * K)
        rows.append((label, len(queries), round(recall_at_2k, 3),
                     ef_needed))
    record(
        "fig09", f"NGFix* by query similarity to history ({NAME}, "
        f"cuts at {cuts[0]:.3f}/{cuts[1]:.3f})",
        ["similarity", "n-queries", f"recall@{K} (ef={2*K})", f"ef for recall {target}"],
        rows,
        notes="paper Fig.9: closer-to-history queries are easier on the fixed index",
    )
    # Shape: high-similarity queries need no more ef than low-similarity ones.
    if efs_needed["high-sim"] and efs_needed["low-sim"]:
        assert efs_needed["high-sim"] <= efs_needed["low-sim"]
    benchmark(search_op(fixer, NAME))


def test_fig09_adaptive_ef_strategy(benchmark):
    """The Sec. 7 follow-up: calibrated per-similarity ef reaches the target
    recall with less average work than one global ef."""
    ds = get_dataset(NAME)
    fixer = get_fixed(NAME)
    gt = compute_ground_truth(ds.base, ds.test_queries, K, ds.metric)
    searcher = AdaptiveSearcher(fixer, ds.train_queries, n_bins=3)
    table = searcher.calibrate(ds.test_queries, gt, k=K, target_recall=0.95,
                               ef_grid=[K, 2 * K, 4 * K, 8 * K, 16 * K])

    # average ef under the adaptive policy vs the single global ef
    per_query_ef = [searcher.ef_for(q) for q in ds.test_queries]
    global_ef = max(searcher._bin_ef)
    rows = [(b, row["n_queries"], row["ef"]) for b, row in table.items()]
    rows.append(("adaptive mean", len(per_query_ef),
                 round(float(np.mean(per_query_ef)), 1)))
    rows.append(("global", len(per_query_ef), global_ef))
    record("fig09_adaptive", f"similarity-adaptive ef ({NAME}, target 0.95)",
           ["bin", "n-queries", "ef"], rows)
    assert np.mean(per_query_ef) <= global_ef
    benchmark(lambda: searcher.search(ds.test_queries[0], k=K))
