"""Fig. 18 — insertion maintenance: HNSW-insert vs partial rebuilds.

Paper: after inserting 20% new points through the base graph's insertion
algorithm, the NGFix extra edges no longer serve the new data; a partial
rebuild (drop a fraction of extra edges, re-fix with a p-sample of the
history) recovers most of a full rebuild's quality, with time growing in p
(p = 0.2 costs ~28.5% of a full rebuild in the paper).
"""


from repro.core import FixConfig, IndexMaintainer, NGFixer
from repro.evalx import compute_ground_truth, evaluate_index
from repro.graphs import HNSW

from workbench import (
    FIX_PARAMS,
    HNSW_PARAMS,
    K,
    get_dataset,
    record,
    search_op,
    timed,
)

NAME = "text2image-sim"
INSERT_FRACTION = 0.2


def _fresh_setup():
    """Index built on 80% of the corpus and fixed; the held-out 20% inserts."""
    ds = get_dataset(NAME)
    n_initial = int((1 - INSERT_FRACTION) * ds.n)
    base = HNSW(ds.base[:n_initial], ds.metric, **HNSW_PARAMS)
    fixer = NGFixer(base, FixConfig(**FIX_PARAMS))
    fixer.fit(ds.train_queries)
    return ds, fixer


def test_fig18_partial_rebuild(benchmark):
    ds = get_dataset(NAME)
    ef = 3 * K
    rows = []
    recalls = {}
    times = {}
    for proportion, label in ((None, "HNSW insert only"),
                              (0.2, "Partial Rebuild 0.2"),
                              (0.5, "Partial Rebuild 0.5"),
                              (1.0, "Partial Rebuild 1.0 (~full refix)")):
        _, fixer = _fresh_setup()
        maintainer = IndexMaintainer(fixer, ds.train_queries, seed=0)
        t_insert, _ = timed(lambda: maintainer.insert(
            ds.base[fixer.dc.size:ds.n]))
        t_rebuild = 0.0
        if proportion is not None:
            t_rebuild, _ = timed(lambda: maintainer.partial_rebuild(
                proportion, drop_fraction=0.2))
        gt = compute_ground_truth(fixer.dc.data, ds.test_queries, K, ds.metric)
        point = evaluate_index(fixer, ds.test_queries, gt, K, ef)
        recalls[label] = point.recall
        times[label] = t_insert + t_rebuild
        rows.append((label, round(point.recall, 4),
                     round(point.ndc_per_query, 1),
                     round(t_insert, 3), round(t_rebuild, 3)))
    record(
        "fig18", f"insertion of {int(INSERT_FRACTION*100)}% new points ({NAME}, "
        f"recall@{K} at ef={ef})",
        ["method", "recall", "NDC/query", "insert s", "rebuild s"],
        rows,
        notes="paper Fig.18: partial rebuild recovers quality; larger p = "
              "better index, more time",
    )
    # Shape: any partial rebuild >= insert-only; full refix >= p=0.2;
    # rebuild time grows with p.
    assert recalls["Partial Rebuild 1.0 (~full refix)"] >= recalls["HNSW insert only"] - 0.01
    assert recalls["Partial Rebuild 0.2"] >= recalls["HNSW insert only"] - 0.01
    assert rows[1][4] <= rows[3][4], "p=0.2 rebuild must be cheaper than p=1.0"
    benchmark(search_op(_fresh_setup()[1], NAME))
