"""Fig. 16 — index construction cost and index size.

Paper: with exact-NN preprocessing HNSW-NGFix* costs about as much to build
as RoarGraph (both pay for exact per-query ground truth); with
approximate-NN preprocessing — which RoarGraph structurally cannot use,
since it has no complete graph to search during construction — NGFix*
builds 2.35-9.02x faster.

Scale note: at a 2 000-point corpus the exact ground truth is one cheap
matrix product, so *wall time* no longer reflects the asymptotics that
dominate at 10M points.  The scale-independent quantity is the number of
distance computations (NDC) spent on preprocessing: exact costs
``|Q| * n`` per round, approximate costs only the graph-search work.  Wall
time is reported, the NDC ratio is asserted.
"""

from repro import HNSW, NSG, RoarGraph
from repro.core import FixConfig, NGFixer

from workbench import (
    FIX_PARAMS,
    HNSW_PARAMS,
    NSG_PARAMS,
    ROAR_PARAMS,
    get_dataset,
    record,
    timed,
)

NAME = "text2image-sim"


def test_fig16_construction_cost_and_size(benchmark):
    ds = get_dataset(NAME)
    n_train = len(ds.train_queries)
    rows = []

    t_hnsw, hnsw = timed(lambda: HNSW(ds.base, ds.metric, **HNSW_PARAMS))
    rows.append(("HNSW", round(t_hnsw, 3), 0,
                 hnsw.stats()["index_size_bytes"]))

    t_nsg, nsg = timed(lambda: NSG(ds.base, ds.metric, **NSG_PARAMS))
    rows.append(("NSG", round(t_nsg, 3), 0, nsg.stats()["index_size_bytes"]))

    t_roar, roar = timed(lambda: RoarGraph(ds.base, ds.metric,
                                           ds.train_queries, **ROAR_PARAMS))
    roar_gt_ndc = n_train * ds.n  # exact bipartite ground truth, mandatory
    rows.append(("RoarGraph", round(t_roar, 3), roar_gt_ndc,
                 roar.stats()["index_size_bytes"]))

    ndc = {}
    sizes = {}
    for mode, label in (("exact", "HNSW-NGFix* (exact NN)"),
                        ("approx", "HNSW-NGFix* (approx NN)")):
        params = dict(FIX_PARAMS)
        params["preprocess"] = mode

        def build():
            fixer = NGFixer(hnsw.clone(), FixConfig(**params))
            fixer.fit(ds.train_queries)
            return fixer
        t_fix, fixer = timed(build)
        ndc[mode] = fixer.preprocess_ndc
        sizes[mode] = fixer.stats()["index_size_bytes"]
        rows.append((label, round(t_hnsw + t_fix, 3), fixer.preprocess_ndc,
                     sizes[mode]))

    record(
        "fig16", f"construction cost and index size ({NAME})",
        ["index", "build seconds", "preprocess NDC", "index bytes"],
        rows,
        notes="paper Fig.16 (NDC is the scale-free cost; see module "
              "docstring): approx-NN preprocessing removes the exact-GT "
              "cost RoarGraph cannot avoid; EH tags make NGFix* slightly "
              "larger per extra edge",
    )

    # Approximate preprocessing saves most of the exact-GT distance work...
    assert ndc["approx"] < 0.6 * ndc["exact"]
    # ...which RoarGraph must always pay.
    assert ndc["approx"] < roar_gt_ndc
    # Index size: bottom-layer NGFix* stays comparable to HNSW.
    assert sizes["exact"] < 1.3 * hnsw.stats()["index_size_bytes"]

    benchmark.pedantic(
        lambda: NGFixer(hnsw.clone(),
                        FixConfig(**dict(FIX_PARAMS, preprocess="approx"))
                        ).fit(ds.train_queries[:20]),
        rounds=3, iterations=1)
