"""Shared benchmark infrastructure: cached datasets/indexes, standard
parameters, paper-table recording.

Every benchmark reproduces one table or figure of the paper at reduced scale
(see DESIGN.md).  Indexes are built once per dataset and *cloned* for any arm
that mutates the graph, so a full benchmark run stays in the minutes range.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.5 → 2 000-point corpora; 1.0 → 4 000).

Tables are both printed and appended to ``benchmarks/results/``; the
``conftest.py`` terminal-summary hook re-emits them at the end of the run so
they survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib
import time


from repro import (
    HNSW,
    NSG,
    FixConfig,
    NGFixer,
    RoarGraph,
    compute_ground_truth,
    load_dataset,
)
from repro.evalx import format_table, sweep

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

# Evaluation constants (paper uses k=100 at 10M scale; k=10 here).
K = 10
EFS = [10, 15, 20, 30, 45, 70, 100, 150, 220, 320]

# Standard index parameters, scaled analogues of Sec. 6.1's settings.
HNSW_PARAMS = dict(M=12, ef_construction=60, single_layer=True, seed=3)
NSG_PARAMS = dict(R=24, L=60, knn_k=24)
ROAR_PARAMS = dict(M=24, n_query_neighbors=32, knn_k=16)
FIX_PARAMS = dict(k=K, hard_ratio=3.0, max_extra_degree=12,
                  preprocess="exact", rounds=(K,))

_cache: dict = {}


def _memo(key, builder):
    if key not in _cache:
        _cache[key] = builder()
    return _cache[key]


def get_dataset(name: str):
    return _memo(("ds", name),
                 lambda: load_dataset(name, seed=BENCH_SEED, scale=BENCH_SCALE))


def get_gt(name: str, k: int = K, queries: str = "test"):
    def build():
        ds = get_dataset(name)
        qs = ds.test_queries if queries == "test" else ds.train_queries
        return compute_ground_truth(ds.base, qs, k, ds.metric)
    return _memo(("gt", name, k, queries), build)


def get_id_gt(name: str, k: int = K):
    def build():
        ds = get_dataset(name)
        return compute_ground_truth(ds.base, ds.id_queries, k, ds.metric)
    return _memo(("idgt", name, k), build)


def get_hnsw(name: str):
    """The cached base HNSW — NEVER mutate; clone() for fixing arms."""
    def build():
        ds = get_dataset(name)
        return HNSW(ds.base, ds.metric, **HNSW_PARAMS)
    return _memo(("hnsw", name), build)


def get_nsg(name: str):
    def build():
        ds = get_dataset(name)
        return NSG(ds.base, ds.metric, **NSG_PARAMS)
    return _memo(("nsg", name), build)


def get_roargraph(name: str, history_fraction: float = 1.0):
    def build():
        ds = get_dataset(name)
        n = int(round(history_fraction * len(ds.train_queries)))
        return RoarGraph(ds.base, ds.metric, ds.train_queries[:n], **ROAR_PARAMS)
    return _memo(("roar", name, history_fraction), build)


def get_fixed(name: str, history_fraction: float = 1.0, **config_overrides):
    """HNSW-NGFix*: clone the cached base graph, fit on (a slice of) the
    history.  Cached per parameterization."""
    key = ("fixed", name, history_fraction, tuple(sorted(config_overrides.items())))

    def build():
        ds = get_dataset(name)
        params = dict(FIX_PARAMS)
        params.update(config_overrides)
        fixer = NGFixer(get_hnsw(name).clone(), FixConfig(**params))
        n = int(round(history_fraction * len(ds.train_queries)))
        fixer.fit(ds.train_queries[:n])
        return fixer
    return _memo(key, build)


def sweep_index(index, name: str, k: int = K, efs=None, queries=None, gt=None):
    ds = get_dataset(name)
    if queries is None:
        queries = ds.test_queries
    if gt is None:
        gt = get_gt(name, k)
    return sweep(index, queries, gt, k, efs or EFS)


def curve_rows(points):
    """(ef, recall, rderr, qps, ndc) rows for a sweep result."""
    return [(p.ef, round(p.recall, 4), round(p.rderr, 6), round(p.qps, 1),
             round(p.ndc_per_query, 1)) for p in points]


def record(exp_id: str, title: str, headers, rows, notes: str = "") -> str:
    """Print and persist one paper-style table."""
    table = format_table(headers, rows, title=f"[{exp_id}] {title}")
    if notes:
        table += f"\n  note: {notes}"
    print("\n" + table)
    path = RESULTS_DIR / f"{exp_id}.txt"
    path.write_text(table + "\n")
    return table


def timed(fn):
    """(seconds, result) of calling fn."""
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def search_op(index, name: str, ef: int = 45, k: int = K):
    """A representative single-query search callable for pytest-benchmark."""
    ds = get_dataset(name)
    queries = ds.test_queries
    state = {"i": 0}

    def op():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return index.search(q, k=k, ef=ef)
    return op
