"""Extension — quantized traversal over the fixed graph (Sec. 3 hybrids).

Not a paper figure: Sec. 3 notes graph indexes "can be combined with other
methods" (quantization+graph systems like SymphonyQG).  This bench composes
the NGFix*-fixed graph with PQ/ADC traversal + exact re-rank and reports the
exchange rate: full-precision distance computations drop to the re-rank
budget while cheap table lookups absorb the traversal.
"""

from repro.evalx import evaluate_index
from repro.quantization import PQRerankSearcher, ProductQuantizer

from workbench import K, get_dataset, get_fixed, get_gt, record, search_op

NAME = "laion-sim"


def test_ext_pq_hybrid(benchmark):
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    fixer = get_fixed(NAME)
    ef = 6 * K

    exact_point = evaluate_index(fixer, ds.test_queries, gt, K, ef)
    rows = [("exact traversal", None, round(exact_point.recall, 4),
             round(exact_point.ndc_per_query, 1), 0)]

    pq = ProductQuantizer(m=8, ks=32, metric=ds.metric, seed=0)
    results = {}
    for rerank in (2 * K, 6 * K, 12 * K):
        searcher = PQRerankSearcher(fixer, pq, rerank=rerank)
        searcher.adc_scored = 0
        point = evaluate_index(searcher, ds.test_queries, gt, K, ef)
        adc_per_query = searcher.adc_scored / len(ds.test_queries)
        results[rerank] = point
        rows.append((f"PQ traversal + rerank {rerank}", rerank,
                     round(point.recall, 4), round(point.ndc_per_query, 1),
                     round(adc_per_query, 1)))
    record(
        "ext_pq_hybrid",
        f"PQ/ADC traversal over HNSW-NGFix* ({NAME}, ef={ef})",
        ["configuration", "rerank", f"recall@{K}", "exact NDC/query",
         "ADC lookups/query"],
        rows,
        notes="extension (Sec.3 hybrids): exact distance work collapses to "
              "the re-rank budget; recall recovers as re-rank grows",
    )
    # Exact NDC is bounded by the re-rank budget; recall grows with it.
    for rerank, point in results.items():
        assert point.ndc_per_query <= rerank + 1
    assert results[12 * K].recall >= results[2 * K].recall
    assert results[12 * K].recall >= exact_point.recall - 0.15
    benchmark(search_op(PQRerankSearcher(fixer, pq, rerank=6 * K), NAME, ef=ef))
