"""Extension — PQ-resident compressed hot path vs the CSR batched baseline.

Four arms, results merged into ``BENCH_pq_hybrid.json`` at the repo root:

- **Equal-recall QPS**: the batched ADC traversal (uint8 codes resident,
  per-block ADC tables, wide beam) + exact re-rank of the visited-set
  shortlist, swept against the frozen-CSR full-precision batched engine on
  ``laion-sim``.  The gate compares QPS at equal recall@10 anchored at the
  CSR ef=100 operating point.
- **ADC kernel**: the per-gather scoring kernel head-to-head — flat-table
  ADC ``take`` gathers vs the full-precision block reduction on identical
  (rows, owners) workloads.
- **Memmap tier**: a cluster-structured corpus served ``compressed`` with
  the raw vector file spilled to disk, page-cache evicted, and the
  serving-phase resident footprint of the file mapping measured against
  the harness RSS cap (half the file) — the bigger-than-RAM demo: codes
  navigate, only re-rank shortlists page vector rows in.
- **Exchange rate**: full-precision NDC/query collapses to the re-rank
  budget while cheap ADC lookups absorb the traversal (Sec. 3 hybrids).

Running the file directly (``python benchmarks/bench_ext_pq_hybrid.py``)
performs the CI smoke pass at whatever ``REPRO_BENCH_SCALE`` is set:
every arm runs with loosened-but-real recall and QPS-ratio gates, no JSON.
"""

import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import (BENCH_SCALE, K, get_dataset, get_fixed, get_gt,
                       get_hnsw, record, search_op, timed)
from repro import compute_ground_truth
from repro.evalx import evaluate_index
from repro.quantization import ADCComputer, PQRerankSearcher, ProductQuantizer
from repro.store import VectorStore

NAME = "laion-sim"
EF_BASELINE = 100            # the CSR anchor operating point
CSR_EFS = [45, 70, 100]
PQ_M = 12                    # laion-sim dim=48 → 4-dim subspaces
PQ_CONFIGS = [               # (rerank, ef, beam_width) sweep
    (250, 60, 8),
    (200, 70, 8),
    (250, 80, 8),
    (200, 100, 8),
    (300, 130, 8),
]
BATCH = 256
REPEATS = 3                  # best-of timing (container timing is noisy)
TARGET_EQUAL_RECALL_RATIO = 1.0   # full-mode gate
SMOKE_EQUAL_RECALL_RATIO = 0.5    # CI-scale floor (tiny corpora are
SMOKE_RECALL_BAND = 0.10          # overhead-bound, not kernel-bound)
TARGET_KERNEL_RATIO = 1.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pq_hybrid.json"


def _pq_ks(n: int) -> int:
    """Codebook size k-means can actually populate at this corpus scale."""
    return 256 if n >= 2048 else 64


def _queries(ds):
    return np.ascontiguousarray(ds.test_queries, dtype=np.float32)


def _recall(results, gt_ids):
    hits = 0
    for i, r in enumerate(results):
        hits += len(set(r.ids[:K].tolist()) & set(gt_ids[i, :K].tolist()))
    return hits / (len(results) * K)


def _best_qps(fn, n_queries):
    """Best-of-REPEATS QPS (max over runs damps container noise)."""
    best = 0.0
    for _ in range(REPEATS):
        elapsed, results = timed(fn)
        best = max(best, n_queries / elapsed)
    return best, results


def _interp_qps(points, target_recall):
    """QPS a (recall, qps) frontier achieves at the target recall.

    Linear interpolation between the bracketing swept points; clamps to
    the lowest point below the sweep, ``None`` above it (the frontier
    never reaches that recall).
    """
    pts = sorted(points, key=lambda p: p["recall"])
    if target_recall > pts[-1]["recall"]:
        return None
    if target_recall <= pts[0]["recall"]:
        return pts[0]["qps"]
    for lo, hi in zip(pts, pts[1:]):
        if lo["recall"] <= target_recall <= hi["recall"]:
            span = hi["recall"] - lo["recall"]
            if span == 0:
                return hi["qps"]
            frac = (target_recall - lo["recall"]) / span
            return lo["qps"] + frac * (hi["qps"] - lo["qps"])
    return pts[-1]["qps"]


# -- arm 1: equal-recall QPS -------------------------------------------------

def run_equal_recall():
    """CSR batched sweep vs compressed (ADC + visited-set re-rank) sweep."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    index = get_hnsw(NAME)
    queries = _queries(ds)
    nq = queries.shape[0]

    index.freeze()
    csr_points = []
    for ef in CSR_EFS:
        index.search_batch(queries[:32], K, ef, batch_size=BATCH)  # warm
        qps, results = _best_qps(
            lambda: index.search_batch(queries, K, ef, batch_size=BATCH), nq)
        csr_points.append({"ef": ef,
                           "recall": round(_recall(results, gt.ids), 4),
                           "qps": round(qps, 1)})

    pq = ProductQuantizer(m=PQ_M, ks=_pq_ks(ds.base.shape[0]),
                          metric=ds.metric, seed=0)
    pq.fit(ds.base)
    pq_points = []
    for rerank, ef, width in PQ_CONFIGS:
        searcher = PQRerankSearcher(index, pq=pq, rerank=rerank,
                                    beam_width=width)
        searcher.search_batch(queries[:32], K, ef, batch_size=BATCH)  # warm
        searcher.adc_scored = searcher.rerank_ndc = 0
        qps, results = _best_qps(
            lambda: searcher.search_batch(queries, K, ef, batch_size=BATCH),
            nq)
        pq_points.append({
            "rerank": rerank, "ef": ef, "beam_width": width,
            "recall": round(_recall(results, gt.ids), 4),
            "qps": round(qps, 1),
            "adc_per_query": round(searcher.adc_scored / (nq * REPEATS), 1),
            "rerank_ndc_per_query": round(
                searcher.rerank_ndc / (nq * REPEATS), 1),
        })

    csr_anchor = next(p for p in csr_points if p["ef"] == EF_BASELINE)
    # Equal-recall point: the CSR ef=100 recall, pulled down to the PQ
    # frontier's reach if a noisy run leaves it fractionally short.
    pq_max = max(p["recall"] for p in pq_points)
    target = min(csr_anchor["recall"], pq_max)
    csr_qps_at = _interp_qps(csr_points, target)
    pq_qps_at = _interp_qps(pq_points, target)
    return {
        "n_queries": nq, "batch_size": BATCH,
        "pq_m": PQ_M, "pq_ks": pq.ks,
        "csr_points": csr_points, "pq_points": pq_points,
        "target_recall": round(target, 4),
        "recall_shortfall": round(csr_anchor["recall"] - target, 4),
        "csr_qps_at_target": round(csr_qps_at, 1),
        "pq_qps_at_target": round(pq_qps_at, 1),
        "qps_ratio": round(pq_qps_at / csr_qps_at, 3),
    }


# -- arm 2: ADC kernel -------------------------------------------------------

def run_adc_kernel(n: int = 20000, dim: int = 48, n_rows: int = 3072,
                   n_queries: int = 64, kernel_repeats: int = 30):
    """Per-gather scoring: flat-table ADC vs the full-precision reduction.

    Runs on a fixed-size synthetic corpus regardless of ``BENCH_SCALE`` —
    the comparison is about memory traffic per gathered row, and a
    cache-resident toy matrix would measure nothing.
    """
    from repro.distances import DistanceComputer

    rng = np.random.default_rng(11)
    data = rng.normal(size=(n, dim)).astype(np.float32)
    dc = DistanceComputer(data, "cosine")
    ids = rng.integers(0, n, size=n_rows).astype(np.int64)
    owners = np.sort(rng.integers(0, n_queries, size=n_rows)).astype(np.int64)
    qmat = np.array([dc.prepare_query(q)
                     for q in rng.normal(size=(n_queries, dim))])

    def best_of(fn):
        return min(timed(fn)[0] for _ in range(kernel_repeats))

    dc.block_to_queries(ids, qmat, owners)  # warm
    full_s = best_of(lambda: dc.block_to_queries(ids, qmat, owners))

    pq = ProductQuantizer(m=PQ_M, ks=256, metric="cosine", seed=0)
    pq.fit(data[:4000])  # sample fit; encode covers every row
    adc = ADCComputer(dc, pq)
    adc.begin_block(qmat)
    adc.block_to_queries(ids, qmat, owners)  # warm
    adc_s = best_of(lambda: adc.block_to_queries(ids, qmat, owners))

    return {
        "n": n, "dim": dim,
        "rows_per_gather": n_rows, "block_queries": n_queries,
        "full_precision_us": round(full_s * 1e6, 1),
        "adc_us": round(adc_s * 1e6, 1),
        "kernel_speedup": round(full_s / adc_s, 2),
        "code_bytes": int(adc.code_bytes),
        "vector_bytes": int(dc.vector_bytes),
        "compression": round(dc.vector_bytes / adc.code_bytes, 1),
    }


# -- arm 3: memmap tier ------------------------------------------------------

def _mapped_rss_bytes(path) -> int:
    """Resident bytes of this process's mappings of ``path`` (smaps)."""
    rss, want = 0, False
    with open("/proc/self/smaps") as smaps:
        for line in smaps:
            if str(path) in line:
                want = True
            elif want and line.startswith("Rss:"):
                rss += int(line.split()[1]) * 1024
                want = False
    return rss


def _evict_page_cache(path) -> None:
    """Drop ``path`` from the page cache so serving faults hit disk.

    ``MADV_RANDOM`` on the mapping stops readahead, but minor faults
    still map every *page-cache-resident* neighbor page (fault-around),
    and the whole file is cache-hot right after the spill write.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


def run_memmap_tier(tmp_dir=None):
    """Cold disk-tier serving demo: codes navigate, re-rank pages rows in.

    A cluster-contiguous corpus (disk tiers cluster their layout so local
    query workloads touch few pages) is built into a ``compressed`` +
    ``memmap_path`` store; the file mapping is then re-opened (zero
    resident pages) and evicted from the page cache, so residency after
    serving is exactly what the query workload's re-rank gathers paged
    back in.  The harness RSS cap is half the raw file: the file exceeds
    the cap, serving must stay under it.
    """
    rng = np.random.default_rng(7)
    # Floor of 4000: below that the file is so few pages that fault-around
    # granularity dominates and the residency fraction stops being about
    # the workload.
    n = max(4000, int(12000 * BENCH_SCALE))
    dim, n_clusters = 96, 16
    centers = rng.normal(size=(n_clusters, dim)).astype(np.float32) * 4
    assign = np.sort(rng.integers(0, n_clusters, size=n))
    data = (centers[assign]
            + rng.normal(size=(n, dim))).astype(np.float32)

    owns_tmp = tmp_dir is None
    tmp_dir = pathlib.Path(tmp_dir or tempfile.mkdtemp(prefix="pqmm-"))
    # Re-rank budget must not exceed the query clusters' population or the
    # shortlists spray page-ins across the whole file.
    rerank = min(200, n // n_clusters)
    store = VectorStore(dim, "l2", M=12, ef_construction=60,
                        compressed=True, pq_m=PQ_M, pq_ks=_pq_ks(n),
                        rerank=rerank, memmap_path=tmp_dir / "vectors.vecs")
    build_s, _ = timed(lambda: (store.add(data), store.build()))

    # Churn before serving: tombstoned ids must never surface from the
    # compressed path (deleted from a non-query cluster, so the recall
    # floor below is unaffected).
    far = np.flatnonzero(assign == n_clusters - 1)[:8]
    store.delete([int(i) for i in far])

    # Query workload with locality: two of the sixteen cluster regions.
    nq = 64
    qa = rng.integers(0, 2, size=nq)
    queries = (centers[qa]
               + rng.normal(size=(nq, dim))).astype(np.float32)
    gt = compute_ground_truth(data, queries, K, "l2")
    del data  # only the disk tier remains

    dc = store.dc
    assert dc.is_memmap, "store did not spill to the memmap tier"
    file_bytes = dc.memmap_path.stat().st_size
    rss_cap = file_bytes // 2

    dc.remap()                       # fresh mapping: zero resident pages
    _evict_page_cache(dc.memmap_path)
    resident_before = _mapped_rss_bytes(dc.memmap_path)

    serve_s, results = timed(lambda: store.search_batch(queries, k=K, ef=150))
    resident_after = _mapped_rss_bytes(dc.memmap_path)
    deleted = set(int(i) for i in far)
    assert not any(deleted & set(r.ids.tolist()) for r in results), (
        "tombstoned id surfaced from the compressed memmap path")
    recall = _recall(results, gt.ids)
    stats = store.stats()

    out = {
        "n": n, "dim": dim, "n_clusters": n_clusters,
        "build_s": round(build_s, 1),
        "file_bytes": int(file_bytes),
        "rss_cap_bytes": int(rss_cap),
        "resident_before_bytes": int(resident_before),
        "resident_after_serving_bytes": int(resident_after),
        "resident_fraction_of_file": round(resident_after / file_bytes, 3),
        "recall": round(recall, 4),
        "qps_cold": round(nq / serve_s, 1),
        "adc_scored": int(stats["compressed"]["adc_scored"]),
        "rerank_ndc": int(stats["compressed"]["rerank_ndc"]),
        "pagein_ms": round(stats["compressed"]["pagein_seconds"] * 1e3, 2),
    }
    store.close()
    if owns_tmp:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    return out


# -- arm 4: exchange rate ----------------------------------------------------

def run_exchange_rate():
    """Full-precision NDC collapses to the re-rank budget (Sec. 3 hybrids)."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    fixer = get_fixed(NAME)
    ef = 6 * K
    exact_point = evaluate_index(fixer, ds.test_queries, gt, K, ef)
    pq = ProductQuantizer(m=PQ_M, ks=_pq_ks(ds.base.shape[0]),
                          metric=ds.metric, seed=0)
    arms = []
    for rerank in (2 * K, 6 * K, 12 * K):
        searcher = PQRerankSearcher(fixer, pq, rerank=rerank)
        point = evaluate_index(searcher, ds.test_queries, gt, K, ef)
        arms.append({"rerank": rerank, "recall": round(point.recall, 4),
                     "ndc_per_query": round(point.ndc_per_query, 1),
                     "adc_per_query": round(point.adc_per_query, 1)})
    return {
        "ef": ef,
        "exact_recall": round(exact_point.recall, 4),
        "exact_ndc_per_query": round(exact_point.ndc_per_query, 1),
        "arms": arms,
    }


# -- pytest entries ----------------------------------------------------------

def test_ext_pq_equal_recall(benchmark):
    results = run_equal_recall()
    rows = [(f"CSR batched ef={p['ef']}", p["recall"], p["qps"], "-", "-")
            for p in results["csr_points"]]
    rows += [(f"PQ rerank={p['rerank']} ef={p['ef']} W={p['beam_width']}",
              p["recall"], p["qps"], p["adc_per_query"],
              p["rerank_ndc_per_query"])
             for p in results["pq_points"]]
    rows.append((f"equal recall@{K} = {results['target_recall']}", "-",
                 f"{results['pq_qps_at_target']} vs "
                 f"{results['csr_qps_at_target']}",
                 f"ratio {results['qps_ratio']}", "-"))
    record(
        "ext_pq_equal_recall",
        f"compressed (ADC + re-rank, wide beam) vs CSR batched ({NAME})",
        ["arm", f"recall@{K}", "qps", "ADC/query", "exact NDC/query"],
        rows,
        notes="QPS compared at equal recall anchored at CSR ef=100; "
              "JSON copy at BENCH_pq_hybrid.json",
    )
    _merge_json({"dataset": NAME, "k": K, "scale": BENCH_SCALE,
                 "equal_recall": results})
    assert results["recall_shortfall"] <= 0.005, (
        f"PQ frontier never reaches the CSR anchor recall "
        f"(shortfall {results['recall_shortfall']})")
    assert results["qps_ratio"] >= TARGET_EQUAL_RECALL_RATIO, (
        f"compressed path {results['qps_ratio']}x CSR at equal recall, "
        f"below {TARGET_EQUAL_RECALL_RATIO}x")
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)
    pq = ProductQuantizer(m=PQ_M, ks=_pq_ks(ds.base.shape[0]),
                          metric=ds.metric, seed=0)
    rerank, ef, width = PQ_CONFIGS[-1]
    searcher = PQRerankSearcher(index, pq=pq, rerank=rerank, beam_width=width)
    queries = _queries(ds)
    benchmark(lambda: searcher.search_batch(queries, K, ef, batch_size=BATCH))


def test_ext_adc_kernel(benchmark):
    results = run_adc_kernel()
    record(
        "ext_adc_kernel",
        f"ADC flat-table gather vs full-precision block kernel ({NAME})",
        ["kernel", "us/gather", "resident bytes", "speedup"],
        [("full precision", results["full_precision_us"],
          results["vector_bytes"], 1.0),
         ("ADC (m flat takes)", results["adc_us"], results["code_bytes"],
          results["kernel_speedup"])],
        notes=f"{results['rows_per_gather']} rows x "
              f"{results['block_queries']} queries per gather; "
              f"{results['compression']}x smaller resident matrix",
    )
    _merge_json({"adc_kernel": results})
    assert results["kernel_speedup"] >= TARGET_KERNEL_RATIO, (
        f"ADC kernel {results['kernel_speedup']}x, below "
        f"{TARGET_KERNEL_RATIO}x full precision")
    from repro.distances import DistanceComputer
    rng = np.random.default_rng(11)
    data = rng.normal(size=(20000, 48)).astype(np.float32)
    dc = DistanceComputer(data, "cosine")
    pq = ProductQuantizer(m=PQ_M, ks=256, metric="cosine", seed=0)
    pq.fit(data[:4000])
    adc = ADCComputer(dc, pq)
    ids = rng.integers(0, dc.size, size=3072).astype(np.int64)
    owners = np.sort(rng.integers(0, 64, size=3072)).astype(np.int64)
    qmat = np.array([dc.prepare_query(q) for q in rng.normal(size=(64, 48))])
    adc.begin_block(qmat)
    benchmark(lambda: adc.block_to_queries(ids, qmat, owners))


def test_ext_memmap_tier(benchmark, tmp_path):
    results = run_memmap_tier(tmp_dir=tmp_path)
    record(
        "ext_memmap_tier",
        "cold disk-tier serving: PQ codes navigate, re-rank pages rows in",
        ["metric", "value"],
        [("raw vector file", f"{results['file_bytes']} B"),
         ("harness RSS cap", f"{results['rss_cap_bytes']} B"),
         ("resident after serving", f"{results['resident_after_serving_bytes']} B"),
         ("resident fraction", results["resident_fraction_of_file"]),
         (f"recall@{K} (cold)", results["recall"]),
         ("qps (cold)", results["qps_cold"]),
         ("page-in time", f"{results['pagein_ms']} ms")],
        notes="mapping remapped + page cache evicted before serving; "
              "residency measured per-mapping via /proc/self/smaps",
    )
    _merge_json({"memmap_tier": results})
    assert results["file_bytes"] > results["rss_cap_bytes"], (
        "demo config does not exceed the harness RSS cap")
    assert results["resident_after_serving_bytes"] < results["rss_cap_bytes"], (
        f"serving paged in {results['resident_after_serving_bytes']} B, "
        f"over the {results['rss_cap_bytes']} B cap")
    assert results["resident_before_bytes"] <= 4 * 4096
    assert results["recall"] >= 0.75, (
        f"cold-tier recall {results['recall']} collapsed")
    # Serving time is recorded above (single cold pass; re-running would
    # measure a warm cache) — give pytest-benchmark the smaps probe.
    benchmark(lambda: _mapped_rss_bytes("vectors.vecs"))


def test_ext_pq_exchange_rate(benchmark):
    results = run_exchange_rate()
    rows = [("exact traversal", "-", results["exact_recall"],
             results["exact_ndc_per_query"], 0)]
    rows += [(f"PQ traversal + rerank {a['rerank']}", a["rerank"],
              a["recall"], a["ndc_per_query"], a["adc_per_query"])
             for a in results["arms"]]
    record(
        "ext_pq_exchange_rate",
        f"PQ/ADC traversal over HNSW-NGFix* ({NAME}, ef={results['ef']})",
        ["configuration", "rerank", f"recall@{K}", "exact NDC/query",
         "ADC lookups/query"],
        rows,
        notes="extension (Sec.3 hybrids): exact distance work collapses to "
              "the re-rank budget; recall recovers as re-rank grows",
    )
    _merge_json({"exchange_rate": results})
    for arm in results["arms"]:
        assert arm["ndc_per_query"] <= arm["rerank"] + 1
        assert arm["adc_per_query"] > arm["ndc_per_query"]
    recalls = {a["rerank"]: a["recall"] for a in results["arms"]}
    assert recalls[12 * K] >= recalls[2 * K]
    assert recalls[12 * K] >= results["exact_recall"] - 0.15
    ds = get_dataset(NAME)
    pq = ProductQuantizer(m=PQ_M, ks=_pq_ks(ds.base.shape[0]),
                          metric=ds.metric, seed=0)
    benchmark(search_op(PQRerankSearcher(get_fixed(NAME), pq, rerank=6 * K),
                        NAME, ef=results["ef"]))


def _merge_json(update):
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.update(update)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def main():
    """CI smoke: every arm at REPRO_BENCH_SCALE, loosened gates, no JSON."""
    start = time.perf_counter()
    eq = run_equal_recall()
    print(f"equal recall : {eq}")
    csr_anchor = next(p for p in eq["csr_points"] if p["ef"] == EF_BASELINE)
    pq_best = max(p["recall"] for p in eq["pq_points"])
    assert csr_anchor["recall"] - pq_best <= SMOKE_RECALL_BAND, (
        f"compressed recall {pq_best} trails CSR {csr_anchor['recall']} "
        f"by more than {SMOKE_RECALL_BAND}")
    assert eq["qps_ratio"] >= SMOKE_EQUAL_RECALL_RATIO, (
        f"QPS ratio {eq['qps_ratio']} below smoke floor "
        f"{SMOKE_EQUAL_RECALL_RATIO}")

    kernel = run_adc_kernel(kernel_repeats=10)
    print(f"adc kernel   : {kernel}")
    assert kernel["kernel_speedup"] >= 0.9, (
        f"ADC kernel regressed to {kernel['kernel_speedup']}x")

    mm = run_memmap_tier()
    print(f"memmap tier  : {mm}")
    assert mm["file_bytes"] > mm["rss_cap_bytes"]
    assert mm["resident_after_serving_bytes"] < mm["rss_cap_bytes"]

    ex = run_exchange_rate()
    print(f"exchange     : {ex}")
    for arm in ex["arms"]:
        assert arm["ndc_per_query"] <= arm["rerank"] + 1
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(recall + QPS-ratio gates at smoke thresholds)")


if __name__ == "__main__":
    main()
