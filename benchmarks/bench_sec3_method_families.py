"""Sec. 3 — method families: graph vs coarse quantization vs brute force.

Paper: "Graph-based methods achieve the best time-accuracy trade-off across
various scenarios."  Measured here across families on one OOD workload:
HNSW-NGFix* (graph), IVF-Flat (coarse quantization), and brute force
(exact), on the work-at-recall axis.
"""

from repro import BruteForceIndex, IVFFlat
from repro.evalx import evaluate_index, ndc_at_recall, sweep

from workbench import EFS, K, get_dataset, get_fixed, get_gt, record, search_op

NAME = "laion-sim"
TARGET = 0.95


def test_sec3_method_families(benchmark):
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    rows = []

    fixer = get_fixed(NAME)
    graph_ndc = ndc_at_recall(sweep(fixer, ds.test_queries, gt, K, EFS), TARGET)
    rows.append(("graph (HNSW-NGFix*)", round(graph_ndc, 1) if graph_ndc else None))

    ivf = IVFFlat(ds.base, ds.metric, n_lists=32, seed=0)
    ivf_points = sweep(ivf, ds.test_queries, gt, K,
                       [K * p for p in (1, 2, 4, 8, 16, 32)])
    ivf_ndc = ndc_at_recall(ivf_points, TARGET)
    rows.append(("coarse quantization (IVF-Flat, 32 lists)",
                 round(ivf_ndc, 1) if ivf_ndc else None))

    brute = BruteForceIndex(ds.base, ds.metric)
    brute_point = evaluate_index(brute, ds.test_queries, gt, K, K)
    rows.append(("brute force (exact)", round(brute_point.ndc_per_query, 1)))

    record(
        "sec3_families", f"method families, NDC at recall@{K}={TARGET} ({NAME})",
        ["family", "NDC/query"],
        rows,
        notes="paper Sec.3: graphs give the best time-accuracy trade-off; "
              "IVF must probe many cells on OOD queries whose NNs scatter",
    )
    assert graph_ndc is not None
    if ivf_ndc is not None:
        assert graph_ndc < ivf_ndc, "graph must beat IVF at high recall"
    assert graph_ndc < brute_point.ndc_per_query
    benchmark(search_op(fixer, NAME))
