"""Fig. 11 — single-modal datasets: modest gains, RoarGraph can trail HNSW.

Paper: on SIFT/DEEP the query and base distributions coincide, hard queries
are rare, NGFix* adds few edges, and its QPS gain shrinks to ~10%;
RoarGraph's query-projected edges can even slow search below plain HNSW.
τ-MNG (the title-collision paper's index) is included as in the original
evaluation.
"""

import pytest

from repro import TauMNG
from repro.evalx import qps_at_recall

from workbench import (
    K,
    curve_rows,
    get_dataset,
    get_fixed,
    get_gt,
    get_hnsw,
    get_nsg,
    get_roargraph,
    record,
    search_op,
    sweep_index,
    _memo,
)

NAMES = ("sift-sim", "deep-sim")


def get_tau_mng(name):
    def build():
        ds = get_dataset(name)
        gt = get_gt(name, 1)
        tau = TauMNG.suggest_tau(gt.distances[:, 0])
        return TauMNG(ds.base, ds.metric, R=24, L=60, knn_k=24, tau=tau)
    return _memo(("taumng", name), build)


@pytest.mark.parametrize("name", NAMES)
def test_fig11_single_modal(benchmark, name):
    curves = {
        "HNSW-NGFix*": sweep_index(get_fixed(name), name),
        "HNSW": sweep_index(get_hnsw(name), name),
        "tau-MNG": sweep_index(get_tau_mng(name), name),
        "RoarGraph": sweep_index(get_roargraph(name), name),
        "NSG": sweep_index(get_nsg(name), name),
    }
    rows = []
    for label, points in curves.items():
        for ef, recall, rderr, qps, ndc in curve_rows(points):
            rows.append((label, ef, recall, rderr, qps, ndc))
    record(f"fig11_{name}", f"single-modal QPS-recall@{K} ({name})",
           ["index", "ef", "recall", "rderr", "QPS", "NDC/query"], rows)

    target = 0.95
    qps = {label: qps_at_recall(points, target) for label, points in curves.items()}
    summary = [(label, round(v, 1) if v else None) for label, v in qps.items()]

    fixer = get_fixed(name)
    edges_per_query = (fixer.adjacency.n_extra_edges()
                       / max(len(fixer.records), 1))
    summary.append(("extra edges/query", round(edges_per_query, 2)))
    record(f"fig11_{name}_summary", f"QPS at recall {target} ({name})",
           ["index", "QPS"], summary,
           notes="paper Fig.11: ~10% NGFix* gain; few extra edges on ID data")

    # Shape: NGFix* never loses to HNSW; gains are modest, and the fixer adds
    # far fewer edges per query than on cross-modal data (hard queries rare).
    assert qps["HNSW-NGFix*"] is not None and qps["HNSW"] is not None
    assert qps["HNSW-NGFix*"] >= 0.9 * qps["HNSW"]
    cross_fixer = get_fixed("laion-sim")
    cross_edges = (cross_fixer.adjacency.n_extra_edges()
                   / max(len(cross_fixer.records), 1))
    assert edges_per_query < cross_edges
    benchmark(search_op(get_fixed(name), name))
