"""Extension — frozen CSR graph kernel + multi-core offline pipeline.

Two arms, both with hard equivalence contracts:

- **CSR search**: the batched engine over the frozen
  :class:`~repro.graphs.csr.CSRGraphView` (contiguous int32 CSR + one
  vectorized ``neighbors_block`` gather per hop) against the PR-1
  baseline (sequential per-query beam search over the dynamic adjacency
  — the ``sequential_qps`` arm of ``BENCH_batch_engine.json``), with the
  PR-1 dynamic-adjacency *batched* engine as the intermediate arm.  Same
  ids, same distances, same NDC on every arm — only QPS moves.
- **Parallel build+fix**: NSG construction plus NGFix* fitting at
  ``n_workers=4`` against the serial run.  Graphs and NDC accounting must
  come out identical; wall-clock speedup requires real cores, so the
  ≥2x assertion is gated on ``os.cpu_count() >= 4`` and the JSON records
  the machine's core count either way.

Results land in ``BENCH_csr_parallel.json`` at the repo root.  Running the
file directly (``python benchmarks/bench_ext_csr_parallel.py``) performs a
fast smoke pass: equivalence + CSR-path assertions at whatever
``REPRO_BENCH_SCALE`` is set, no JSON, no speedup targets — this is the CI
benchmark smoke job.
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import (FIX_PARAMS, K, NSG_PARAMS, get_dataset, get_hnsw,
                       record, timed)
from repro import NSG, FixConfig, NGFixer
from repro.graphs.search import BatchSearchEngine, VisitedTable, greedy_search

NAME = "laion-sim"
EF = 100
N_QUERIES = 500
BATCH_SIZES = [64, 256]
N_WORKERS = 4
TARGET_SEARCH_SPEEDUP = 1.5  # frozen-CSR batched vs the PR-1 baseline
TARGET_PARALLEL_SPEEDUP = 2.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_csr_parallel.json"


def _queries(ds, n):
    qs = np.concatenate([ds.test_queries, ds.train_queries])[:n]
    return np.ascontiguousarray(qs, dtype=np.float32)


def _pad(results, k):
    ids = np.full((len(results), k), -1, dtype=np.int64)
    dists = np.full((len(results), k), np.inf)
    for i, r in enumerate(results):
        m = min(k, len(r.ids))
        ids[i, :m] = r.ids[:m]
        dists[i, :m] = r.distances[:m]
    return ids, dists


def run_csr_search(n_queries=N_QUERIES):
    """PR-1 baseline vs dynamic batch engine vs frozen-CSR batch path."""
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)
    queries = _queries(ds, n_queries)

    # PR-1 baseline: sequential per-query beam search over the dynamic
    # per-node adjacency (exactly PR 1's `index.search` hot path).
    visited = VisitedTable(index.dc.size)

    def sequential():
        return [greedy_search(index.dc, index.adjacency.neighbors,
                              index.entry_points(q), q, k=K, ef=EF,
                              visited=visited, prepared=True)
                for q in (index.dc.prepare_query(q) for q in queries)]

    sequential()  # warm
    index.dc.reset_ndc()
    seq_s, seq_results = timed(sequential)
    seq_ndc = index.dc.reset_ndc()
    seq_ids, seq_d = _pad(seq_results, K)

    index.freeze()
    assert index.adjacency.csr_view() is not None, "CSR path not exercised"
    arms = []
    for bs in BATCH_SIZES:
        # PR-1 batched mode: same engine, no graph_fn → per-node walks.
        dyn_engine = BatchSearchEngine(
            index.dc, index.adjacency.neighbors, index.entry_points,
            excluded_fn=lambda: index.adjacency.tombstones or None,
            batch_size=bs)
        dyn_engine.search_batch(queries, K, EF)  # warm
        index.dc.reset_ndc()
        dyn_s, dyn_results = timed(
            lambda: dyn_engine.search_batch(queries, K, EF))
        dyn_ndc = index.dc.reset_ndc()

        index.search_batch(queries, K, EF, batch_size=bs)  # warm
        index.dc.reset_ndc()
        csr_s, csr_results = timed(
            lambda: index.search_batch(queries, K, EF, batch_size=bs))
        csr_ndc = index.dc.reset_ndc()
        assert index.adjacency.csr_view() is not None, "view dirtied mid-run"

        for results, ndc in ((dyn_results, dyn_ndc), (csr_results, csr_ndc)):
            ids, d = _pad(results, K)
            np.testing.assert_array_equal(ids, seq_ids)
            np.testing.assert_array_equal(d, seq_d)
            assert ndc == seq_ndc, f"NDC drifted: {ndc} vs {seq_ndc}"

        arms.append({
            "batch_size": bs,
            "dynamic_qps": round(len(queries) / dyn_s, 1),
            "csr_qps": round(len(queries) / csr_s, 1),
            "speedup_vs_baseline": round(seq_s / csr_s, 2),
            "speedup_vs_dynamic": round(dyn_s / csr_s, 2),
        })

    return {
        "n_queries": len(queries), "ef": EF,
        "pr1_baseline_qps": round(len(queries) / seq_s, 1),
        "arms": arms,
        "best_speedup_vs_baseline": max(a["speedup_vs_baseline"]
                                        for a in arms),
    }


def run_parallel_build_fix():
    """Serial vs n_workers=4 NSG build + NGFix* fit; identical artifacts."""
    ds = get_dataset(NAME)

    def build_and_fix(n_workers):
        t_build, nsg = timed(lambda: NSG(
            ds.base, ds.metric, n_workers=n_workers, **NSG_PARAMS))
        fixer = NGFixer(get_hnsw(NAME).clone(),
                        FixConfig(n_workers=n_workers, **FIX_PARAMS))
        t_fit, _ = timed(lambda: fixer.fit(ds.train_queries))
        return t_build, t_fit, nsg, fixer

    sb, sf, nsg_s, fix_s = build_and_fix(1)
    pb, pf, nsg_p, fix_p = build_and_fix(N_WORKERS)

    # Determinism contract: identical graphs and identical NDC accounting.
    assert nsg_s.dc.ndc == nsg_p.dc.ndc
    for u in range(nsg_s.size):
        assert (nsg_s.adjacency.base_neighbors_ro(u)
                == nsg_p.adjacency.base_neighbors_ro(u)), f"NSG differs at {u}"
    assert fix_s.dc.ndc == fix_p.dc.ndc
    assert fix_s.preprocess_ndc == fix_p.preprocess_ndc
    for u in range(fix_s.dc.size):
        assert (fix_s.adjacency.extra_neighbors_ro(u)
                == fix_p.adjacency.extra_neighbors_ro(u)), f"fix differs at {u}"

    return {
        "n_workers": N_WORKERS, "cpu_count": os.cpu_count(),
        "serial_build_s": round(sb, 3), "serial_fit_s": round(sf, 3),
        "parallel_build_s": round(pb, 3), "parallel_fit_s": round(pf, 3),
        "speedup": round((sb + sf) / (pb + pf), 2),
    }


def test_ext_csr_search(benchmark):
    results = run_csr_search()
    rows = [("pr1 sequential baseline", 1,
             results["pr1_baseline_qps"], 1.0, "-")]
    for arm in results["arms"]:
        rows.append((f"dynamic batched bs={arm['batch_size']}",
                     arm["batch_size"], arm["dynamic_qps"], "-", "-"))
        rows.append((f"frozen CSR bs={arm['batch_size']}",
                     arm["batch_size"], arm["csr_qps"],
                     arm["speedup_vs_baseline"], arm["speedup_vs_dynamic"]))
    record(
        "ext_csr_search",
        f"frozen-CSR batch kernel vs PR-1 paths ({NAME}, ef={EF})",
        ["mode", "batch size", "qps", "vs baseline", "vs dyn engine"],
        rows,
        notes="identical ids/distances/NDC asserted on every arm; JSON copy "
              "at BENCH_csr_parallel.json",
    )
    _merge_json({"dataset": NAME, "k": K, "csr_search": results})
    best = results["best_speedup_vs_baseline"]
    assert best >= TARGET_SEARCH_SPEEDUP, (
        f"CSR speedup {best}x below {TARGET_SEARCH_SPEEDUP}x")
    index = get_hnsw(NAME)
    queries = _queries(get_dataset(NAME), N_QUERIES)
    benchmark(lambda: index.search_batch(queries, K, EF,
                                         batch_size=BATCH_SIZES[-1]))


def test_ext_parallel_build_fix(benchmark):
    results = run_parallel_build_fix()
    record(
        "ext_parallel_build_fix",
        f"serial vs {N_WORKERS}-worker NSG build + NGFix* fit ({NAME})",
        ["stage", "serial s", f"n_workers={N_WORKERS} s"],
        [("NSG build", results["serial_build_s"], results["parallel_build_s"]),
         ("NGFix* fit", results["serial_fit_s"], results["parallel_fit_s"]),
         ("total speedup", 1.0, results["speedup"])],
        notes=f"identical graphs/NDC asserted; {results['cpu_count']} cores "
              "on this machine — wall-clock speedup needs real cores",
    )
    _merge_json({"dataset": NAME, "k": K, "parallel_build_fix": results})
    if (os.cpu_count() or 1) >= 4:
        assert results["speedup"] >= TARGET_PARALLEL_SPEEDUP, (
            f"parallel speedup {results['speedup']}x below "
            f"{TARGET_PARALLEL_SPEEDUP}x with {os.cpu_count()} cores")
    benchmark(lambda: NSG(get_dataset(NAME).base, get_dataset(NAME).metric,
                          n_workers=N_WORKERS, **NSG_PARAMS))


def _merge_json(update):
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.update(update)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def main():
    """CI smoke: equivalence contracts only, no JSON, no speedup targets."""
    start = time.perf_counter()
    search = run_csr_search(n_queries=100)
    par = run_parallel_build_fix()
    print(f"csr search : {search}")
    print(f"parallel   : {par}")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(equivalence asserted; speedups informational)")


if __name__ == "__main__":
    main()
