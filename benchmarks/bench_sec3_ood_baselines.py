"""Sec. 3 — the OOD-baseline narrative: RobustVamana vs RoarGraph vs NGFix*.

Paper's related-work account: RobustVamana (OOD-DiskANN) inserts historical
query points as navigators, which "partially mitigates the accuracy loss
caused by OOD queries... however, these points also extend the search path,
leading to only a small overall improvement"; RoarGraph does significantly
better; NGFix* (this paper) better still.

Reproduced: QPS/NDC at fixed recall for plain Vamana, RobustVamana,
RoarGraph, and HNSW-NGFix* on a cross-modal workload, plus the path-length
cost of navigator nodes (NDC at equal ef).
"""

from repro.evalx import evaluate_index, ndc_at_recall, qps_at_recall
from repro.graphs import RobustVamana, Vamana

from workbench import (
    K,
    _memo,
    get_dataset,
    get_fixed,
    get_gt,
    get_roargraph,
    record,
    search_op,
    sweep_index,
)

NAME = "text2image-sim"
TARGET = 0.95


def get_vamana(name):
    def build():
        ds = get_dataset(name)
        return Vamana(ds.base, ds.metric, R=24, L=60, seed=0)
    return _memo(("vamana", name), build)


def get_robust_vamana(name):
    def build():
        ds = get_dataset(name)
        return RobustVamana(ds.base, ds.metric, ds.train_queries, R=24, L=60,
                            seed=0)
    return _memo(("robustvamana", name), build)


def test_sec3_ood_baselines(benchmark):
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    arms = {
        "Vamana": get_vamana(NAME),
        "RobustVamana": get_robust_vamana(NAME),
        "RoarGraph": get_roargraph(NAME),
        "HNSW-NGFix*": get_fixed(NAME),
    }
    rows = []
    ndc = {}
    for label, index in arms.items():
        points = sweep_index(index, NAME)
        qps = qps_at_recall(points, TARGET)
        ndc[label] = ndc_at_recall(points, TARGET)
        at_2k = evaluate_index(index, ds.test_queries, gt, K, 2 * K)
        rows.append((label, round(qps, 1) if qps else None,
                     round(ndc[label], 1) if ndc[label] else None,
                     round(at_2k.recall, 4), round(at_2k.ndc_per_query, 1)))
    record(
        "sec3_ood_baselines",
        f"OOD-aware baselines ({NAME}, targets recall@{K}={TARGET})",
        ["index", f"QPS@{TARGET}", f"NDC@{TARGET}", f"recall (ef={2*K})",
         f"NDC (ef={2*K})"],
        rows,
        notes="paper Sec.3: navigator insertion (RobustVamana) helps recall "
              "but extends paths; projection (RoarGraph) is better; NGFix* "
              "best",
    )
    # Navigator nodes extend search paths: more NDC at equal ef than Vamana.
    vamana_ndc_2k = rows[0][4]
    robust_ndc_2k = rows[1][4]
    assert robust_ndc_2k > vamana_ndc_2k
    # NGFix* needs the least work at the target recall.
    fix = ndc["HNSW-NGFix*"]
    assert fix is not None
    for rival, value in ndc.items():
        if rival != "HNSW-NGFix*" and value is not None:
            assert fix <= 1.05 * value, f"NGFix* must not trail {rival}"
    benchmark(search_op(get_robust_vamana(NAME), NAME))
