"""Fig. 17 — sensitivity to NGFix* parameters.

Paper sweeps: the per-node extra-degree limit (larger = better index but
bigger), the number of NNs k covered per query (two rounds with a large and
a small k beat either alone for mixed retrieval sizes), and the EH threshold
(ε; values near K_max suffice because few edges exceed it).
"""

from repro.core import FixConfig, NGFixer
from repro.evalx import qps_at_recall

from workbench import (
    FIX_PARAMS,
    K,
    get_dataset,
    get_hnsw,
    record,
    search_op,
    sweep_index,
)

NAME = "laion-sim"
TARGET = 0.95


def _fit(**overrides):
    params = dict(FIX_PARAMS)
    params.update(overrides)
    fixer = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
    fixer.fit(get_dataset(NAME).train_queries)
    return fixer


def test_fig17_extra_degree_budget(benchmark):
    rows = []
    by_budget = {}
    for budget in (2, 4, 8, 16):
        fixer = _fit(max_extra_degree=budget)
        qps = qps_at_recall(sweep_index(fixer, NAME), TARGET)
        by_budget[budget] = qps
        rows.append((budget, round(qps, 1) if qps else None,
                     fixer.adjacency.n_extra_edges(),
                     round(fixer.adjacency.average_out_degree(), 2)))
    record("fig17_degree", f"extra-degree budget sweep ({NAME}, recall {TARGET})",
           ["budget", "QPS", "extra edges", "avg out-degree"], rows,
           notes="paper Fig.17: smaller budget = smaller index, some QPS loss")
    # Index size grows monotonically with the budget.
    edges = [r[2] for r in rows]
    assert edges == sorted(edges)
    # A generous budget is no worse than a starved one.
    if by_budget[16] and by_budget[2]:
        assert by_budget[16] >= 0.9 * by_budget[2]
    benchmark(search_op(_fit(max_extra_degree=8), NAME))


def test_fig17_round_schedule(benchmark):
    """Two rounds (large k then small k) vs one round of either."""
    rows = []
    results = {}
    for rounds, label in (((K,), f"k={K}"),
                          ((2 * K,), f"k={2*K}"),
                          ((2 * K, K), f"k={2*K} then k={K}")):
        fixer = _fit(rounds=rounds)
        points = sweep_index(fixer, NAME)
        qps = qps_at_recall(points, TARGET)
        results[label] = qps
        rows.append((label, round(qps, 1) if qps else None,
                     fixer.adjacency.n_extra_edges()))
    record("fig17_rounds", f"fixing-round schedules ({NAME}, recall {TARGET})",
           ["schedule", "QPS", "extra edges"], rows,
           notes="paper Sec 6.6: two rounds (large then small k) is a good default")
    two_round = results[f"k={2*K} then k={K}"]
    assert two_round is not None
    assert two_round >= 0.85 * max(v for v in results.values() if v)
    benchmark(search_op(_fit(rounds=(K,)), NAME))


def test_fig17_eh_threshold(benchmark):
    """ε (eh_threshold) sweep: near-K_max thresholds suffice."""
    k_max = FixConfig(**FIX_PARAMS).k_max()
    rows = []
    results = {}
    for eps in (K, int(1.5 * K), k_max):
        fixer = _fit(eh_threshold=float(eps))
        qps = qps_at_recall(sweep_index(fixer, NAME), TARGET)
        results[eps] = qps
        rows.append((eps, round(qps, 1) if qps else None,
                     fixer.adjacency.n_extra_edges()))
    record("fig17_threshold", f"EH threshold (epsilon) sweep ({NAME})",
           ["epsilon", "QPS", "extra edges"], rows,
           notes="paper Sec 6.6: epsilon near K_max is adequate; smaller "
                 "epsilon adds more edges")
    # Tighter thresholds demand more fixing edges.
    edges = [r[2] for r in rows]
    assert edges[0] >= edges[-1]
    assert results[k_max] is not None
    benchmark(search_op(_fit(eh_threshold=float(k_max)), NAME))
