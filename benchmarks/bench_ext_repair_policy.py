"""Extension — signal-driven maintenance policy vs fixed cadence.

Two identically seeded stores serve the same bursty delete-storm workload
(:func:`repro.evalx.runner.delete_storm_workload`); the only difference is
the maintenance policy:

- **cadence** (the default): merge every ``MERGE_EVERY`` overlay ops,
  repair every observed query unconditionally;
- **signal**: skip repairs while navigability signals look healthy, defer
  cadence merges, and react to detected delete storms with a burst repair
  of recently served queries plus an immediate epoch cut.

Three contracts:

- **Tail recall**: under the storm protocol the signal policy's p99
  recall@10 must be at least the cadence baseline's (its mean recall may
  trail by at most ``RECALL_EPSILON``).
- **Maintenance cost**: the signal policy must spend at most
  ``MAINT_RATIO_TARGET`` (0.5) of the cadence policy's repair + merge
  wall-clock on the same storm run.  Wall-clock gates are backstopped by
  the deterministic op counts: strictly fewer repairs AND merges.
- **Steady state**: on the evenly spread churn workload the signal policy
  must hold ``QPS_RATIO_TARGET`` of the cadence policy's QPS at equal
  recall (within ``RECALL_EPSILON``) — the control plane must not tax the
  workload it was not designed to win.

Results land in ``BENCH_repair_policy.json`` at the repo root.  Running the
file directly performs the CI smoke pass: deterministic count gates + tail
parity at whatever ``REPRO_BENCH_SCALE`` is set, no JSON, wall-clock ratios
informational (too noisy at smoke scale).
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import K, get_dataset, get_gt, record
from repro import VectorStore
from repro.evalx import delete_storm_workload, interleaved_workload

NAME = "laion-sim"
EF = 45
BATCH_SIZE = 16
MERGE_EVERY = 8            # short cadence: the baseline merges aggressively
ROUNDS = 3
STORM_EVERY = 4            # query batches between delete storms
STORM_SIZE = 24            # ids deleted per storm (one burst call)
OBSERVE_EVERY = 1          # cadence repairs every batch; signal is selective

# Tuned so one storm = one detection (rising edge re-arms after one calm
# batch of re-inserts) and the burst stays small: tail protection comes
# from the immediate post-storm epoch cut, not from repair volume.


def signal_config(storm_size=STORM_SIZE):
    return {
        "storm_deletes": storm_size - 1,
        "storm_window": storm_size,
        "min_traces": 16,
        "storm_repair_budget": 2,
        "max_overlay_factor": 12,
    }


SIGNAL_CONFIG = signal_config()

MAINT_RATIO_TARGET = 0.5
QPS_RATIO_TARGET = 0.75
RECALL_EPSILON = 0.01

JSON_PATH = (pathlib.Path(__file__).resolve().parent.parent
             / "BENCH_repair_policy.json")


def build_store(policy, policy_config=None):
    ds = get_dataset(NAME)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=3,
                        merge_every=MERGE_EVERY,
                        policy=policy, policy_config=policy_config)
    store.add(ds.base)
    store.build()
    store.fit_history(ds.train_queries)
    return store


def storm_arm(policy, policy_config=None, *, storm_every=STORM_EVERY,
              storm_size=STORM_SIZE, rounds=ROUNDS):
    ds = get_dataset(NAME)
    gt = get_gt(NAME, K)
    store = build_store(policy, policy_config)
    report = delete_storm_workload(
        store, ds.test_queries, gt, K, EF, batch_size=BATCH_SIZE,
        rounds=rounds, storm_every=storm_every, storm_size=storm_size,
        observe_every=OBSERVE_EVERY, seed=3)
    policy_stats = store.scheduler.stats()["policy"]
    store.close()
    return report, policy_stats


def steady_arm(policy, policy_config=None):
    ds = get_dataset(NAME)
    gt = get_gt(NAME, K)
    store = build_store(policy, policy_config)
    report = interleaved_workload(
        store, ds.test_queries, gt, K, EF, batch_size=BATCH_SIZE,
        mutation_fraction=0.1, observe_every=2, seed=3)
    store.close()
    return report


def run_repair_policy(*, storm_every=STORM_EVERY, storm_size=STORM_SIZE,
                      rounds=ROUNDS, steady=True, strict_counts=True):
    config = signal_config(storm_size)
    cadence, _ = storm_arm(None, storm_every=storm_every,
                           storm_size=storm_size, rounds=rounds)
    signal, signal_stats = storm_arm(
        "signal", config, storm_every=storm_every,
        storm_size=storm_size, rounds=rounds)

    # Contract 1: the signal policy holds the tail.
    assert signal.recall_p99 >= cadence.recall_p99, (
        f"signal p99 {signal.recall_p99:.4f} below cadence "
        f"{cadence.recall_p99:.4f}")
    assert signal.recall >= cadence.recall - RECALL_EPSILON, (
        f"signal mean recall {signal.recall:.4f} trails cadence "
        f"{cadence.recall:.4f} by more than {RECALL_EPSILON}")

    # Correctness of the state machine at any scale: every storm is one
    # detection, healthy repairs are skipped, merges are deferred.
    assert signal_stats["storm_detections"] == signal.n_storms, (
        f"detected {signal_stats['storm_detections']} of "
        f"{signal.n_storms} storms")
    assert signal_stats["repairs_skipped"] > 0
    assert signal.merges < cadence.merges, (
        f"signal ran {signal.merges} merges vs cadence {cadence.merges}")
    if strict_counts:
        # Contract 2 backstop (deterministic): strictly fewer repairs too.
        # Only meaningful at full scale — on tiny smoke corpora the storm
        # bursts dominate the handful of cadence observes.
        assert signal.repairs < cadence.repairs, (
            f"signal ran {signal.repairs} repairs vs "
            f"cadence {cadence.repairs}")

    maint_ratio = (signal.maintenance_seconds
                   / max(cadence.maintenance_seconds, 1e-9))
    results = {
        "ef": EF, "batch_size": BATCH_SIZE, "merge_every": MERGE_EVERY,
        "rounds": rounds, "storm_every": storm_every,
        "storm_size": storm_size, "signal_config": config,
        "storm": {
            "n_queries": cadence.n_queries,
            "n_storms": cadence.n_storms,
            "cadence": cadence.to_dict(),
            "signal": signal.to_dict(),
            "signal_policy": signal_stats,
            "maintenance_ratio": round(maint_ratio, 3),
        },
    }
    if steady:
        steady_c = steady_arm(None)
        steady_s = steady_arm("signal", SIGNAL_CONFIG)
        qps_ratio = steady_s.qps / max(steady_c.qps, 1e-9)
        # Contract 3: no steady-state tax.
        assert steady_s.recall >= steady_c.recall - RECALL_EPSILON, (
            f"steady-state recall {steady_s.recall:.4f} trails "
            f"{steady_c.recall:.4f}")
        assert qps_ratio >= QPS_RATIO_TARGET, (
            f"steady-state qps ratio {qps_ratio:.3f} below "
            f"{QPS_RATIO_TARGET}")
        results["steady"] = {
            "cadence_qps": round(steady_c.qps, 1),
            "signal_qps": round(steady_s.qps, 1),
            "qps_ratio": round(qps_ratio, 3),
            "cadence_recall": round(steady_c.recall, 4),
            "signal_recall": round(steady_s.recall, 4),
        }
    return results


def _storm_row(name, report):
    return (name, round(report.recall_p99, 4), round(report.recall_p95, 4),
            round(report.recall, 4), report.repairs, report.merges,
            round(report.maintenance_seconds * 1e3, 1))


def test_ext_repair_policy(benchmark):
    results = run_repair_policy()
    storm = results["storm"]
    cadence = storm["cadence"]
    signal = storm["signal"]

    class _Row:
        def __init__(self, d):
            self.__dict__.update(d)
    record(
        "ext_repair_policy",
        f"signal-driven vs fixed-cadence maintenance under delete storms "
        f"({NAME}, {storm['n_storms']} storms x {STORM_SIZE} deletes)",
        ["policy", "p99 recall", "p95 recall", "mean recall", "repairs",
         "merges", "maintenance ms"],
        [_storm_row("cadence", _Row(cadence)),
         _storm_row("signal", _Row(signal))],
        notes=f"maintenance ratio {storm['maintenance_ratio']} (target "
              f"<={MAINT_RATIO_TARGET}); steady-state qps ratio "
              f"{results['steady']['qps_ratio']} (target "
              f">={QPS_RATIO_TARGET}); JSON at BENCH_repair_policy.json",
    )
    JSON_PATH.write_text(json.dumps(
        {"dataset": NAME, "k": K, "repair_policy": results}, indent=2) + "\n")

    # The wall-clock gate (the deterministic count gates already ran
    # inside run_repair_policy).
    assert storm["maintenance_ratio"] <= MAINT_RATIO_TARGET, (
        f"signal maintenance ratio {storm['maintenance_ratio']} exceeds "
        f"{MAINT_RATIO_TARGET}")

    store = build_store("signal", SIGNAL_CONFIG)
    queries = get_dataset(NAME).test_queries
    benchmark(lambda: store.search_batch(queries[:BATCH_SIZE], K, EF,
                                         batch_size=BATCH_SIZE))
    store.close()


def main():
    """CI smoke: deterministic gates only, storms scaled to the query set."""
    start = time.perf_counter()
    ds = get_dataset(NAME)
    n_batches = max(1, -(-len(ds.test_queries) // BATCH_SIZE))
    # Storms must leave calm batches between them (the latch re-arms on
    # calm re-inserts), so never storm more often than every 2nd batch.
    storm_every = max(2, min(STORM_EVERY, n_batches // 2))
    results = run_repair_policy(storm_every=storm_every,
                                storm_size=min(STORM_SIZE, 16),
                                rounds=4, steady=False,
                                strict_counts=False)
    storm = results["storm"]
    print(f"repair policy storm arms: cadence p99 "
          f"{storm['cadence']['recall_p99']:.4f} "
          f"({storm['cadence']['repairs']} repairs, "
          f"{storm['cadence']['merges']} merges) vs signal p99 "
          f"{storm['signal']['recall_p99']:.4f} "
          f"({storm['signal']['repairs']} repairs, "
          f"{storm['signal']['merges']} merges)")
    print(f"maintenance ratio {storm['maintenance_ratio']} "
          f"(informational at smoke scale)")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(tail parity + deterministic count gates asserted)")


if __name__ == "__main__":
    main()
