"""Fig. 8 — the headline comparison: QPS-recall and NDC-rderr on the four
cross-modal datasets for {HNSW-NGFix*, RoarGraph, HNSW, NSG}.

Paper claims reproduced as *shape*:
- HNSW-NGFix* dominates at high recall; at recall 0.95 its QPS is 1.3-1.6x
  RoarGraph and 1.7-3.7x HNSW (2.25x / 6.9x at 0.99);
- at low rderr, NGFix* needs roughly half RoarGraph's distance computations.
Absolute factors differ at 2k-point scale (the base graph is easier to cover),
so the assertions check ordering and >1 ratios rather than the exact factors;
the measured ratios are recorded for EXPERIMENTS.md.
"""

import pytest

from repro.evalx import ndc_at_rderr, ndc_at_recall, qps_at_recall
from repro.datasets.registry import CROSS_MODAL_NAMES

from workbench import (
    K,
    curve_rows,
    get_fixed,
    get_hnsw,
    get_nsg,
    get_roargraph,
    record,
    search_op,
    sweep_index,
)


def _curves(name):
    return {
        "HNSW-NGFix*": sweep_index(get_fixed(name), name),
        "RoarGraph": sweep_index(get_roargraph(name), name),
        "HNSW": sweep_index(get_hnsw(name), name),
        "NSG": sweep_index(get_nsg(name), name),
    }


@pytest.mark.parametrize("name", CROSS_MODAL_NAMES)
def test_fig08_qps_recall(benchmark, name):
    curves = _curves(name)
    rows = []
    for label, points in curves.items():
        for ef, recall, rderr, qps, ndc in curve_rows(points):
            rows.append((label, ef, recall, rderr, qps, ndc))
    record(f"fig08_{name}", f"QPS-recall@{K} / NDC-rderr@{K} ({name})",
           ["index", "ef", "recall", "rderr", "QPS", "NDC/query"], rows)

    # Shape assertions at the paper's operating points.  QPS is recorded
    # (the paper's headline axis) but the assertion runs on NDC-at-recall:
    # in-process wall-clock jitters by >10% between arms, while distance
    # counts are deterministic.
    summary = []
    for target in (0.95, 0.99):
        qps = {label: qps_at_recall(points, target)
               for label, points in curves.items()}
        ndc = {label: ndc_at_recall(points, target)
               for label, points in curves.items()}
        summary.append((target, *[round(qps[l], 1) if qps[l] else None
                                  for l in curves]))
        fix = ndc["HNSW-NGFix*"]
        assert fix is not None, f"NGFix* never reaches recall {target} on {name}"
        for rival in ("RoarGraph", "HNSW", "NSG"):
            if ndc[rival] is not None:
                assert fix <= 1.1 * ndc[rival], (
                    f"{name}@{target}: NGFix* NDC {fix:.0f} > {rival} "
                    f"{ndc[rival]:.0f}")
    record(f"fig08_{name}_qps_at_recall",
           f"QPS at fixed recall@{K} ({name})",
           ["recall", *curves.keys()], summary)

    benchmark(search_op(get_fixed(name), name))


@pytest.mark.parametrize("name", CROSS_MODAL_NAMES)
def test_fig08_ndc_rderr(benchmark, name):
    curves = _curves(name)
    targets = (0.01, 0.001, 0.0001)
    rows = []
    for target in targets:
        ndc = {label: ndc_at_rderr(points, target)
               for label, points in curves.items()}
        rows.append((target, *[round(ndc[l], 1) if ndc[l] else None
                               for l in curves]))
        fix = ndc["HNSW-NGFix*"]
        assert fix is not None
        # The paper's NDC claim lives at *tight* error targets (its headline
        # is rderr < 1e-4); at loose targets low-degree baselines can spend
        # fewer computations.  Assert ordering only at the tightest target.
        if target == min(targets):
            for rival in ("RoarGraph", "HNSW", "NSG"):
                if ndc[rival] is not None:
                    assert fix <= 1.15 * ndc[rival], (
                        f"{name}@rderr{target}: NGFix* NDC {fix:.0f} > {rival}")
    record(f"fig08_{name}_ndc_at_rderr",
           f"NDC/query at fixed rderr@{K} ({name})",
           ["rderr", *curves.keys()], rows)
    benchmark(search_op(get_roargraph(name), name))
