"""Extension — do the NGFix edges actually carry traffic?

Design-evidence ablation (DESIGN.md): replay searches with discovery-edge
attribution and measure what share of returned results was first reached
through an NGFix/RFix *extra* edge.  The fixed OOD workload should route
through extra edges far more than ID queries (whose regions the fixer left
alone) — the added bytes are load-bearing exactly where intended.
"""

from repro.core.analysis import discovery_edge_stats

from workbench import K, get_dataset, get_fixed, get_hnsw, record, search_op

NAME = "laion-sim"


def test_ext_edge_usage(benchmark):
    ds = get_dataset(NAME)
    fixer = get_fixed(NAME)
    ef = 2 * K
    ood = discovery_edge_stats(fixer, ds.test_queries, k=K, ef=ef)
    ident = discovery_edge_stats(fixer, ds.id_queries, k=K, ef=ef)
    unfixed = discovery_edge_stats(get_hnsw(NAME), ds.test_queries, k=K, ef=ef)
    extra_share = (fixer.adjacency.n_extra_edges()
                   / max(fixer.adjacency.n_base_edges()
                         + fixer.adjacency.n_extra_edges(), 1))
    rows = [
        ("OOD test queries on fixed graph", round(ood["extra_fraction"], 4)),
        ("ID queries on fixed graph", round(ident["extra_fraction"], 4)),
        ("OOD test queries on unfixed graph", round(unfixed["extra_fraction"], 4)),
        ("extra edges' share of all edges", round(extra_share, 4)),
    ]
    record(
        "ext_edge_usage",
        f"share of top-{K} results discovered via extra edges ({NAME}, ef={ef})",
        ["population", "extra-edge discovery fraction"],
        rows,
        notes="design evidence: fixed edges carry OOD traffic "
              "disproportionately to their byte share",
    )
    assert unfixed["via_extra_edges"] == 0
    assert ood["extra_fraction"] > ident["extra_fraction"]
    assert ood["extra_fraction"] > extra_share, (
        "extra edges should be used beyond their share of the graph")
    benchmark(search_op(fixer, NAME))
