"""Extension — trace-driven autotuner + hardness-aware planner vs a flat ef.

Per dataset, two arms share one store and one fitted :class:`TunedConfig`:

- **untuned**: the batched default path at the tuner's own single global
  ``default_ef`` — the best flat setting a careful operator would pick for
  the recall target, so the comparison isolates the *per-bin* wins;
- **tuned**: ``apply_tuned_config`` + ``search_batch(..., ef=None)`` — the
  hardness planner partitions each batch by predicted bin and runs each
  group with its fitted ``ef``/``beam_width``/``rerank``/route (including
  the compressed-path rerank refinement on PQ stores).

Queries are tiled ``TILE``× so each arm serves planner-realistic volume:
the lock-step engine amortizes per-block round costs over group size, so
tiny batches understate (and occasionally invert) the tuned arm.

Contracts:

- **Recall parity** everywhere: tuned recall@10 >= untuned - ``RECALL_EPSILON``.
- **Win somewhere**: tuned QPS >= ``QPS_WIN_TARGET`` (1.1x) untuned on at
  least one dataset.
- **Tax nowhere**: tuned QPS >= ``QPS_FLOOR`` (0.98x) untuned on every
  dataset.

Results land in ``BENCH_autotune.json`` at the repo root.  Running the file
directly performs the CI smoke pass: one uncompressed + one compressed
dataset at whatever ``REPRO_BENCH_SCALE`` is set, recall parity asserted
strictly, the QPS-win gate asserted on the compressed store only (flat-ef
timing is too noisy at smoke scale to gate the 1.1x everywhere).
"""

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import K, get_dataset, get_gt, record
from repro import VectorStore, compute_ground_truth
from repro.evalx.metrics import recall_per_query
from repro.tuning import fit_tuned_config

# (dataset, compressed?) arms.  sift-sim carries the PQ store: the tuner's
# compressed refinement (smaller rerank on easy bins) converts directly to
# exact-distance savings there.
DATASETS = [("laion-sim", False), ("text2image-sim", False),
            ("sift-sim", True)]
BATCH_SIZE = 64
TILE = 4                   # tile test queries to planner-realistic volume
REPS = 10
RERANK = 50                # compressed-store default the tuner refines

RECALL_EPSILON = 0.01
QPS_WIN_TARGET = 1.1       # at least one dataset must clear this
QPS_FLOOR = 0.98           # no dataset may fall below this

JSON_PATH = (pathlib.Path(__file__).resolve().parent.parent
             / "BENCH_autotune.json")


def build_store(name, compressed):
    ds = get_dataset(name)
    kwargs = dict(compressed=True, rerank=RERANK) if compressed else {}
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=3, **kwargs)
    store.add(ds.base)
    store.build()
    store.fit_history(ds.train_queries)
    return store


def _batch_recall(results, gt_ids):
    ids = np.full((len(results), K), -1, dtype=np.int64)
    for i, r in enumerate(results):
        top = np.asarray(r.ids[:K])
        ids[i, :len(top)] = top
    return float(recall_per_query(ids, gt_ids).mean())


def _timed_arm(searcher, queries, ef, reps):
    """(qps, results) of ``reps`` serving passes at ``ef`` (None = planned).

    QPS comes from the *median* rep so a GC pause or scheduler hiccup in
    one pass cannot sink (or inflate) an arm.
    """
    for _ in range(2):  # warm engines, entry caches, PQ tables
        searcher.search_batch(queries, K, ef, batch_size=BATCH_SIZE)
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        results = searcher.search_batch(queries, K, ef, batch_size=BATCH_SIZE)
        times.append(time.perf_counter() - start)
    return len(queries) / float(np.median(times)), results


def run_dataset(name, compressed, *, reps=REPS, tile=TILE):
    """One tuned-vs-untuned comparison; returns the result row dict."""
    ds = get_dataset(name)
    store = build_store(name, compressed)
    try:
        train_gt = compute_ground_truth(
            ds.base, ds.train_queries, K, ds.metric)
        config = fit_tuned_config(
            store.searcher, ds.train_queries, K,
            gt_ids=train_gt.top(K).ids, seed=3)

        queries = np.tile(ds.test_queries, (tile, 1))
        gt_ids = np.tile(get_gt(name, K).top(K).ids, (tile, 1))

        untuned_qps, untuned_res = _timed_arm(
            store.searcher, queries, config.default_ef, reps)
        untuned_recall = _batch_recall(untuned_res, gt_ids)

        store.apply_tuned_config(config)
        tuned_qps, tuned_res = _timed_arm(store.searcher, queries, None, reps)
        tuned_recall = _batch_recall(tuned_res, gt_ids)
        planner_stats = store.searcher.planner.stats()
    finally:
        store.close()

    return {
        "dataset": name,
        "compressed": compressed,
        "default_ef": config.default_ef,
        "bins": [{"ef": b.ef, "beam_width": b.beam_width,
                  "rerank": b.rerank, "route": b.route}
                 for b in config.bins],
        "untuned_recall": round(untuned_recall, 4),
        "tuned_recall": round(tuned_recall, 4),
        "untuned_qps": round(untuned_qps, 1),
        "tuned_qps": round(tuned_qps, 1),
        "speedup": round(tuned_qps / max(untuned_qps, 1e-9), 3),
        "planner": {k: planner_stats[k]
                    for k in ("planned", "adapted", "resolved_entries")},
    }


def run_autotune(datasets=DATASETS, *, reps=REPS, tile=TILE,
                 require_win=True, qps_floor=QPS_FLOOR,
                 recall_epsilon=RECALL_EPSILON):
    rows = [run_dataset(name, compressed, reps=reps, tile=tile)
            for name, compressed in datasets]

    for row in rows:
        # Contract 1: tuned serving never gives up recall.
        assert row["tuned_recall"] >= row["untuned_recall"] - recall_epsilon, (
            f"{row['dataset']}: tuned recall {row['tuned_recall']:.4f} "
            f"trails untuned {row['untuned_recall']:.4f} by more than "
            f"{recall_epsilon}")
        # Contract 3: tuned serving never taxes a dataset it cannot win.
        assert row["speedup"] >= qps_floor, (
            f"{row['dataset']}: tuned qps is {row['speedup']:.3f}x untuned, "
            f"below the {qps_floor}x floor")

    if require_win:
        # Contract 2: the tuner must pay for itself somewhere.
        best = max(row["speedup"] for row in rows)
        assert best >= QPS_WIN_TARGET, (
            f"best tuned speedup {best:.3f}x below the "
            f"{QPS_WIN_TARGET}x win target on any dataset")
    return rows


def test_ext_autotune(benchmark):
    rows = run_autotune()
    record(
        "ext_autotune",
        "trace-driven autotuner + hardness planner vs flat default ef",
        ["dataset", "pq", "default ef", "untuned recall", "tuned recall",
         "untuned qps", "tuned qps", "speedup"],
        [(r["dataset"], "yes" if r["compressed"] else "no", r["default_ef"],
          r["untuned_recall"], r["tuned_recall"], r["untuned_qps"],
          r["tuned_qps"], r["speedup"]) for r in rows],
        notes=f"gates: recall parity within {RECALL_EPSILON} everywhere, "
              f">={QPS_WIN_TARGET}x qps on >=1 dataset, >={QPS_FLOOR}x on "
              f"all; JSON at BENCH_autotune.json",
    )
    JSON_PATH.write_text(json.dumps(
        {"k": K, "batch_size": BATCH_SIZE, "tile": TILE,
         "gates": {"recall_epsilon": RECALL_EPSILON,
                   "qps_win_target": QPS_WIN_TARGET,
                   "qps_floor": QPS_FLOOR},
         "autotune": rows}, indent=2) + "\n")

    # Benchmark the planned path itself on the compressed store.
    name, compressed = DATASETS[-1]
    store = build_store(name, compressed)
    ds = get_dataset(name)
    train_gt = compute_ground_truth(ds.base, ds.train_queries, K, ds.metric)
    store.apply_tuned_config(fit_tuned_config(
        store.searcher, ds.train_queries, K,
        gt_ids=train_gt.top(K).ids, seed=3))
    queries = ds.test_queries
    benchmark(lambda: store.search_batch(queries[:BATCH_SIZE], K, None,
                                         batch_size=BATCH_SIZE))
    store.close()


def main():
    """CI smoke: one uncompressed + one compressed dataset; recall parity
    strict, QPS win asserted where it is deterministic (the PQ store, where
    the saving is exact-distance volume, not timer noise)."""
    start = time.perf_counter()
    # Uncompressed-store timings swing +-15% at smoke reps, and with the
    # tiny smoke test set (~40 queries) one query is 2.5% of the recall
    # mass, so both floors loosen to measurement granularity: they guard
    # against gross regressions only.  The compressed-store win is the
    # deterministic gate (exact-distance volume, not timer noise).
    rows = run_autotune([("laion-sim", False), ("sift-sim", True)],
                        reps=5, require_win=False, qps_floor=0.8,
                        recall_epsilon=0.05)
    for row in rows:
        print(f"{row['dataset']} (pq={row['compressed']}): untuned "
              f"{row['untuned_recall']:.4f} @ {row['untuned_qps']:.0f} qps "
              f"vs tuned {row['tuned_recall']:.4f} @ "
              f"{row['tuned_qps']:.0f} qps ({row['speedup']:.2f}x)")
    pq_row = next(r for r in rows if r["compressed"])
    assert pq_row["speedup"] >= QPS_WIN_TARGET, (
        f"compressed-store tuned speedup {pq_row['speedup']:.3f}x below "
        f"{QPS_WIN_TARGET}x")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(recall parity everywhere + compressed-store win asserted)")


if __name__ == "__main__":
    main()
