"""Table 1 — statistics of the datasets (scaled-down synthetic analogues).

Paper: six datasets (4 cross-modal, 2 single-modal) with corpus/query counts,
dimensionality, distance type, and modalities.  Here: the registry's
simulated equivalents, plus their measured OOD scores — the property the
substitution must preserve (cross-modal query sets far from the base
distribution, single-modal ones inside it).
"""

from repro.datasets import dataset_statistics, load_dataset, ood_report
from repro.datasets.registry import CROSS_MODAL_NAMES, SINGLE_MODAL_NAMES

from workbench import BENCH_SCALE, BENCH_SEED, record


def test_table1_dataset_statistics(benchmark):
    rows = []
    for stat in dataset_statistics(seed=BENCH_SEED, scale=BENCH_SCALE):
        ds = load_dataset(stat.name, seed=BENCH_SEED, scale=BENCH_SCALE)
        report = ood_report(ds.test_queries, ds.base, seed=0)
        rows.append((
            stat.name, stat.n_base, stat.n_train, stat.n_test, stat.dim,
            stat.metric, stat.modality,
            round(report["wasserstein_query_vs_base"]
                  / max(report["wasserstein_base_control"], 1e-12), 1),
            report["is_ood"],
        ))
    record(
        "table1", "Dataset statistics (scaled; W-ratio = sliced-Wasserstein "
        "query-vs-base over base-internal control)",
        ["dataset", "|X|", "|Q_train|", "|Q_test|", "d", "dist", "type",
         "W-ratio", "OOD"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    for name in CROSS_MODAL_NAMES:
        assert by_name[name][8], f"{name} must register as OOD"
    for name in SINGLE_MODAL_NAMES:
        assert not by_name[name][8], f"{name} must register as in-distribution"

    benchmark(lambda: dataset_statistics(["webvid-sim"], seed=BENCH_SEED,
                                         scale=BENCH_SCALE))
