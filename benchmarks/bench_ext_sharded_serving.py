"""Extension — sharded scatter-gather serving vs the single-process path.

Three arms, results merged into ``BENCH_sharding.json`` at the repo root:

- **Shard scaling at equal recall**: an N-shard :class:`ClusterRouter`
  (hash-partitioned worker processes, one batched RPC per partition per
  query block, vectorized top-k merge) swept over per-shard ``ef`` against
  the single-process ``VectorStore`` batched engine on ``laion-sim``.  The
  gate compares QPS at equal recall@10 anchored at the single-process
  ef=100 operating point.  On this 1-CPU container the win is *equal-recall
  efficiency*, not parallelism: each shard's graph is N× smaller, so it
  reaches its partition's share of the global top-k at a fraction of the
  anchor ``ef``.
- **Coalescing trade-off**: the asyncio front door batching concurrent
  single-query clients into shared ``search_batch`` blocks — throughput
  vs per-query latency across client counts and coalescing windows.
- **Chaos**: one shard of four killed mid-churn (90/10 search/mutate) via
  ``repro.faults``; the router must never crash, answers during the outage
  are degraded-but-valid survivor merges, mutations owned by the dead
  partition are refused with timeout-write semantics, and WAL recovery +
  catch-up replay restores the exact pre-kill id population.

Running the file directly (``python benchmarks/bench_ext_sharded_serving.py``)
performs the CI smoke pass at whatever ``REPRO_BENCH_SCALE`` is set:
every arm runs with loosened-but-real gates, no JSON.
"""

import asyncio
import atexit
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import BENCH_SCALE, K, get_dataset, get_gt, record, timed
from repro.cluster import ClusterRouter, ClusterError, FrontDoor, WORKER_OP_POINT
from repro.store import VectorStore

NAME = "laion-sim"
EF_BASELINE = 100            # the single-process anchor operating point
SHARD_EFS = [10, 12, 15, 20, 30, 45, 70]
BASELINE_EFS = [45, 70, 100]
SHARD_COUNTS = (2, 4)
BATCH = 256
REPEATS = 3                  # best-of timing (container timing is noisy)
BUILD = dict(M=12, ef_construction=60, seed=3)
SHARD_BEAM = 4               # shard graphs are round-bound at small ef

# The 2.0x gate expresses scatter-gather parallelism: worker processes
# overlap their compute, so it is enforced wherever >= 4 cores exist.  On
# a single core there is no parallelism to harvest — every shard's rounds
# serialize onto one CPU — and the honest bar is a wall-clock *win* at
# equal recall (smaller trained per-shard graphs at a fraction of the
# anchor ef, against 4x merge/IPC overhead).  The JSON records the core
# count and which target applied.
N_CPUS = os.cpu_count() or 1
TARGET_SCALING_RATIO = 2.0 if N_CPUS >= 4 else 1.0
SMOKE_SCALING_RATIO = 0.3    # CI-scale floor (tiny shards are IPC-bound)
SMOKE_RECALL_BAND = 0.10

COALESCE_SETTINGS = [        # (concurrent clients, window_ms)
    (1, 2.0),
    (8, 2.0),
    (32, 0.5),
    (32, 2.0),
    (32, 8.0),
]

CHAOS_ROUNDS = 24            # rounds of 9 searches + 1 mutation
CHAOS_KILL_NTH = 80          # worker ops on the victim before os._exit
EF_CHAOS = 30

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sharding.json"


def _queries(ds):
    return np.ascontiguousarray(ds.test_queries, dtype=np.float32)


def _recall(results, gt_ids):
    hits = 0
    for i, r in enumerate(results):
        hits += len(set(r.ids[:K].tolist()) & set(gt_ids[i, :K].tolist()))
    return hits / (len(results) * K)


def _best_qps(fn, n_queries):
    """Best-of-REPEATS QPS (max over runs damps container noise)."""
    best = 0.0
    for _ in range(REPEATS):
        elapsed, results = timed(fn)
        best = max(best, n_queries / elapsed)
    return best, results


def _interp_qps(points, target_recall):
    """QPS a (recall, qps) frontier achieves at the target recall."""
    pts = sorted(points, key=lambda p: p["recall"])
    if target_recall > pts[-1]["recall"]:
        return None
    if target_recall <= pts[0]["recall"]:
        return pts[0]["qps"]
    for lo, hi in zip(pts, pts[1:]):
        if lo["recall"] <= target_recall <= hi["recall"]:
            span = hi["recall"] - lo["recall"]
            if span == 0:
                return hi["qps"]
            frac = (target_recall - lo["recall"]) / span
            return lo["qps"] + frac * (hi["qps"] - lo["qps"])
    return pts[-1]["qps"]


# -- shared fixtures (routers are processes; build once, reap at exit) -------

_ROUTERS: dict = {}
_BASELINE: dict = {}


def _get_router(n_shards: int) -> ClusterRouter:
    """Serving-tuned router: NGFix-trained shards searched with a wide beam.

    Small per-shard graphs are lock-step-round-bound at the tiny ef they
    need, so the shards run ``beam_width=SHARD_BEAM`` and train their
    repair edges on the dataset's historical queries (the same query
    stream every other arm of this suite uses for training).
    """
    if n_shards not in _ROUTERS:
        ds = get_dataset(NAME)
        router = ClusterRouter(ds.base.shape[1], ds.metric,
                               n_shards=n_shards, n_replicas=1,
                               beam_width=SHARD_BEAM, **BUILD)
        _, _ = timed(lambda: router.load(ds.base,
                                         train_queries=ds.train_queries))
        _ROUTERS[n_shards] = router
    return _ROUTERS[n_shards]


def _get_baseline_store(trained: bool = False) -> VectorStore:
    key = "trained" if trained else "store"
    if key not in _BASELINE:
        ds = get_dataset(NAME)
        store = VectorStore(ds.base.shape[1], ds.metric, **BUILD)
        store.add(ds.base)
        store.build()
        if trained:
            store.fit_history(ds.train_queries)
        _BASELINE[key] = store
    return _BASELINE[key]


def _reap():
    for router in _ROUTERS.values():
        router.close()
    _ROUTERS.clear()
    for store in _BASELINE.values():
        store.close()
    _BASELINE.clear()


atexit.register(_reap)


# -- arm 1: shard scaling at equal recall ------------------------------------

def run_scaling():
    """N-shard router ef sweep vs the single-process batched anchor."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    queries = _queries(ds)
    nq = queries.shape[0]

    store = _get_baseline_store()
    store.search_batch(queries[:32], k=K, ef=EF_BASELINE)  # warm
    base_qps, base_results = _best_qps(
        lambda: store.search_batch(queries, k=K, ef=EF_BASELINE,
                                   batch_size=BATCH), nq)
    baseline = {"ef": EF_BASELINE,
                "recall": round(_recall(base_results, gt.ids), 4),
                "qps": round(base_qps, 1)}

    # Decomposition honesty: the shards are NGFix-trained, so also sweep a
    # trained *single-process* store.  Its equal-recall QPS separates how
    # much of the sharded win comes from training vs from sharding itself.
    trained = _get_baseline_store(trained=True)
    trained.search_batch(queries[:32], k=K, ef=EF_BASELINE)  # warm
    trained_points = []
    for ef in BASELINE_EFS:
        qps, results = _best_qps(
            lambda: trained.search_batch(queries, k=K, ef=ef,
                                         batch_size=BATCH), nq)
        trained_points.append({"ef": ef,
                               "recall": round(_recall(results, gt.ids), 4),
                               "qps": round(qps, 1)})
    trained_at = _interp_qps(trained_points, baseline["recall"])
    trained_baseline = {"points": trained_points,
                        "qps_at_anchor_recall":
                        round(trained_at, 1) if trained_at else None}

    shard_arms = []
    for n_shards in SHARD_COUNTS:
        router = _get_router(n_shards)
        points = []
        for ef in SHARD_EFS:
            router.search_batch(queries[:32], K, ef, batch_size=BATCH)  # warm
            qps, results = _best_qps(
                lambda: router.search_batch(queries, K, ef,
                                            batch_size=BATCH), nq)
            points.append({"ef": ef,
                           "recall": round(_recall(results, gt.ids), 4),
                           "qps": round(qps, 1)})
        # Equal-recall point: the anchor recall, pulled down to the shard
        # frontier's reach if a noisy run leaves it fractionally short.
        frontier_max = max(p["recall"] for p in points)
        target = min(baseline["recall"], frontier_max)
        qps_at = _interp_qps(points, target)
        at_target = [p for p in points if p["recall"] >= target]
        shard_arms.append({
            "n_shards": n_shards,
            "points": points,
            "target_recall": round(target, 4),
            "recall_shortfall": round(baseline["recall"] - target, 4),
            "ef_at_target": min(p["ef"] for p in at_target) if at_target
            else None,
            "qps_at_target": round(qps_at, 1),
            "qps_ratio": round(qps_at / baseline["qps"], 3),
        })
    return {"n_queries": nq, "batch_size": BATCH, "k": K,
            "cpu_count": N_CPUS, "shard_beam": SHARD_BEAM,
            "target_ratio_applied": TARGET_SCALING_RATIO,
            "baseline": baseline, "trained_baseline": trained_baseline,
            "shards": shard_arms}


# -- arm 2: coalescing trade-off ---------------------------------------------

async def _drive_clients(fd, queries, n_clients):
    """C clients issue single queries back-to-back through the front door."""
    latencies = []
    results = [None] * queries.shape[0]

    async def client(indices):
        for i in indices:
            t0 = time.perf_counter()
            results[i] = await fd.search(queries[i])
            latencies.append(time.perf_counter() - t0)

    chunks = np.array_split(np.arange(queries.shape[0]), n_clients)
    await asyncio.gather(*(client(c.tolist()) for c in chunks if c.size))
    await fd.drain()
    return latencies, results


def run_coalescing():
    """Front-door throughput/latency across client counts and windows."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    queries = _queries(ds)
    nq = queries.shape[0]
    router = _get_router(max(SHARD_COUNTS))
    ef = EF_BASELINE  # generous ef: the arm measures coalescing, not recall
    router.search_batch(queries[:32], K, ef, batch_size=BATCH)  # warm

    direct = router.search_batch(queries, K, ef, batch_size=BATCH)
    curve = []
    for n_clients, window_ms in COALESCE_SETTINGS:
        fd = FrontDoor(router, window_ms=window_ms, max_batch=64, k=K, ef=ef)
        elapsed, (lat, results) = timed(
            lambda: asyncio.run(_drive_clients(fd, queries, n_clients)))
        # Coalesced answers must be bit-identical to the direct batched path.
        mismatches = sum(
            not np.array_equal(r.ids[:K], d.ids[:K])
            for r, d in zip(results, direct))
        stats = fd.stats()
        lat_ms = np.asarray(lat) * 1e3
        curve.append({
            "clients": n_clients, "window_ms": window_ms,
            "qps": round(nq / elapsed, 1),
            "mean_latency_ms": round(float(lat_ms.mean()), 2),
            "p95_latency_ms": round(float(np.percentile(lat_ms, 95)), 2),
            "mean_batch": round(stats["mean_batch"], 2),
            "blocks": stats["blocks"],
            "mismatches": mismatches,
        })
    return {"n_queries": nq, "ef": ef, "recall_direct":
            round(_recall(direct, gt.ids), 4), "curve": curve}


# -- arm 3: chaos (kill one shard mid-churn) ---------------------------------

def run_chaos():
    """90/10 churn, one shard killed, recovery back to the exact id set."""
    ds = get_dataset(NAME)
    queries = _queries(ds)
    rng = np.random.default_rng(5)
    n_shards, victim = 4, 1
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-shardbench-"))
    router = ClusterRouter(ds.base.shape[1], ds.metric, n_shards=n_shards,
                           n_replicas=1, base_dir=tmp, **BUILD)
    try:
        gids = router.load(ds.base)
        live = set(gids)
        router.search_batch(queries[:8], K, EF_CHAOS)  # warm
        router.handles[victim][0].rpc({"op": "arm_faults", "rules": [
            {"point": WORKER_OP_POINT, "action": "kill",
             "nth": CHAOS_KILL_NTH}]})

        degraded_flags = []
        refused = applied = 0
        qi = 0
        for rnd in range(CHAOS_ROUNDS):
            for _ in range(9):  # 90%: searches, one query at a time
                result = router.search(queries[qi % queries.shape[0]],
                                       K, EF_CHAOS)
                degraded_flags.append(bool(result.degraded))
                qi += 1
            try:  # 10%: mutations (alternate insert / delete)
                if rnd % 2 == 0:
                    vec = (ds.base[rng.integers(0, ds.base.shape[0])]
                           + rng.normal(scale=0.01, size=ds.base.shape[1])
                           ).astype(np.float32)
                    live.update(router.add(vec[None, :]))
                else:
                    target = rng.choice(sorted(live))
                    router.delete([int(target)])
                    live.discard(int(target))
                applied += 1
            except ClusterError:
                # Owning partition dead: timeout-write semantics — the op
                # is buffered for catch-up but not acknowledged.  The churn
                # driver treats it as refused and does not retry, so `live`
                # keeps only acknowledged mutations.
                refused += 1

        first_degraded = (degraded_flags.index(True)
                          if any(degraded_flags) else None)
        # Degraded answers must form a contiguous suffix: exactly the
        # searches issued between the kill and recovery, never before.
        suffix_ok = (first_degraded is None
                     or all(degraded_flags[first_degraded:]))

        report = router.respawn(victim, 0)
        post = router.search_batch(queries[:32], K, EF_CHAOS)
        expected = {g for g in live if g % n_shards == victim}
        victim_stats = router.handles[victim][0].rpc({"op": "stats"})["stats"]
        return {
            "n_shards": n_shards, "victim_shard": victim,
            "rounds": CHAOS_ROUNDS, "searches": len(degraded_flags),
            "mutations_applied": applied, "mutations_refused": refused,
            "first_degraded_search": first_degraded,
            "degraded_searches": sum(degraded_flags),
            "degraded_is_contiguous_suffix": suffix_ok,
            "killed": first_degraded is not None,
            "recovery_consistent": bool(report and report.get("consistent")),
            "post_recovery_degraded": sum(r.degraded for r in post),
            "post_recovery_live_replicas": router.live_replicas(),
            "victim_gids_expected": len(expected),
            "victim_gids_recovered": int(victim_stats.get("n_gids", -1)),
        }
    finally:
        router.close()
        shutil.rmtree(tmp, ignore_errors=True)


# -- JSON merge ---------------------------------------------------------------

def _merge_json(update: dict):
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.update(update)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# -- pytest entries ----------------------------------------------------------

def test_ext_sharded_scaling(benchmark):
    results = run_scaling()
    base = results["baseline"]
    rows = [(f"single-process ef={base['ef']}", base["recall"], base["qps"],
             "-", "-")]
    for p in results["trained_baseline"]["points"]:
        rows.append((f"single-process trained ef={p['ef']}", p["recall"],
                     p["qps"], "-", "-"))
    t_at = results["trained_baseline"]["qps_at_anchor_recall"]
    if t_at:
        rows.append(("single-process trained @ anchor recall", "-", t_at,
                     "-", f"ratio {round(t_at / base['qps'], 3)}"))
    for arm in results["shards"]:
        rows += [(f"{arm['n_shards']} shards ef={p['ef']}", p["recall"],
                  p["qps"], "-", "-") for p in arm["points"]]
        rows.append((f"{arm['n_shards']} shards @ equal recall "
                     f"{arm['target_recall']}", "-",
                     arm["qps_at_target"], f"ef≈{arm['ef_at_target']}",
                     f"ratio {arm['qps_ratio']}"))
    record(
        "ext_sharded_scaling",
        f"sharded scatter-gather vs single-process batched ({NAME})",
        ["arm", f"recall@{K}", "qps", "per-shard ef", "vs baseline"],
        rows,
        notes=f"QPS at equal recall anchored at single-process ef=100; "
              f"shards NGFix-trained, beam_width={SHARD_BEAM}; "
              f"{N_CPUS} CPU(s) visible, so the enforced ratio gate is "
              f"{TARGET_SCALING_RATIO}x (2.0x expresses worker-process "
              f"parallelism and applies when >=4 cores exist; on one core "
              f"every shard's rounds serialize and the bar is a wall-clock "
              f"win at equal recall); the trained single-process rows "
              f"decompose training's share of the win; JSON copy at "
              f"BENCH_sharding.json",
    )
    _merge_json({"dataset": NAME, "k": K, "scale": BENCH_SCALE,
                 "scaling": results})
    four = next(a for a in results["shards"] if a["n_shards"] == 4)
    assert four["recall_shortfall"] <= 0.005, (
        f"4-shard frontier never reaches the anchor recall "
        f"(shortfall {four['recall_shortfall']})")
    assert four["qps_ratio"] >= TARGET_SCALING_RATIO, (
        f"4-shard router {four['qps_ratio']}x single-process at equal "
        f"recall, below {TARGET_SCALING_RATIO}x")
    ds = get_dataset(NAME)
    queries = _queries(ds)
    router = _get_router(4)
    ef = four["ef_at_target"] or EF_BASELINE
    benchmark(lambda: router.search_batch(queries, K, ef, batch_size=BATCH))


def test_ext_sharded_coalescing(benchmark):
    results = run_coalescing()
    rows = [(f"C={p['clients']} window={p['window_ms']}ms", p["qps"],
             p["mean_latency_ms"], p["p95_latency_ms"], p["mean_batch"])
            for p in results["curve"]]
    record(
        "ext_sharded_coalescing",
        "front-door coalescing: throughput vs latency "
        f"({max(SHARD_COUNTS)} shards, {NAME})",
        ["clients/window", "qps", "mean ms", "p95 ms", "mean batch"],
        rows,
        notes="concurrent single-query clients coalesced into shared "
              "search_batch blocks; answers bit-identical to direct path",
    )
    _merge_json({"coalescing": results})
    for p in results["curve"]:
        assert p["mismatches"] == 0, (
            f"coalesced answers diverged from the direct batched path "
            f"at {p}")
    wide = [p for p in results["curve"] if p["clients"] >= 8]
    assert max(p["mean_batch"] for p in wide) >= 2.0, (
        "front door never coalesced concurrent clients into shared blocks")
    lone = next(p for p in results["curve"] if p["clients"] == 1)
    assert lone["mean_batch"] <= 1.5, (
        "a single sequential client should not batch with itself")
    ds = get_dataset(NAME)
    queries = _queries(ds)
    router = _get_router(max(SHARD_COUNTS))
    fd_settings = dict(window_ms=2.0, max_batch=64, k=K, ef=EF_BASELINE)
    benchmark(lambda: asyncio.run(_drive_clients(
        FrontDoor(router, **fd_settings), queries[:32], 8)))


def test_ext_sharded_chaos():
    results = run_chaos()
    record(
        "ext_sharded_chaos",
        "shard killed mid-churn: degraded suffix, refusal, WAL recovery",
        ["metric", "value"],
        [(key, results[key]) for key in results],
        notes="one of four single-replica shards killed by repro.faults "
              "during 90/10 search/mutate churn; searches degrade (never "
              "crash), owned mutations refuse with timeout-write "
              "semantics, respawn replays WAL + catch-up to the exact "
              "acknowledged id population",
    )
    _merge_json({"chaos": results})
    _assert_chaos(results)


def _assert_chaos(results):
    assert results["killed"], "the fault plan never fired"
    assert results["degraded_is_contiguous_suffix"], (
        "degraded answers appeared before the kill or cleared before "
        "recovery")
    assert results["recovery_consistent"], "WAL recovery reported gaps"
    assert results["post_recovery_degraded"] == 0
    assert results["post_recovery_live_replicas"] == results["n_shards"]
    assert results["victim_gids_recovered"] == results["victim_gids_expected"], (
        f"recovered shard holds {results['victim_gids_recovered']} gids, "
        f"expected {results['victim_gids_expected']}")


def main():
    """CI smoke: every arm at REPRO_BENCH_SCALE, loosened gates, no JSON."""
    start = time.perf_counter()
    scaling = run_scaling()
    print(f"scaling   : {scaling['baseline']}")
    for arm in scaling["shards"]:
        print(f"            {arm['n_shards']} shards → "
              f"ratio {arm['qps_ratio']} at recall {arm['target_recall']}")
    four = next(a for a in scaling["shards"] if a["n_shards"] == 4)
    assert four["recall_shortfall"] <= SMOKE_RECALL_BAND, (
        f"4-shard recall trails the anchor by {four['recall_shortfall']}")
    assert four["qps_ratio"] >= SMOKE_SCALING_RATIO, (
        f"QPS ratio {four['qps_ratio']} below smoke floor "
        f"{SMOKE_SCALING_RATIO}")

    coalescing = run_coalescing()
    print(f"coalescing: {coalescing['curve']}")
    assert all(p["mismatches"] == 0 for p in coalescing["curve"])
    assert max(p["mean_batch"] for p in coalescing["curve"]
               if p["clients"] >= 8) >= 2.0

    chaos = run_chaos()
    print(f"chaos     : {chaos}")
    _assert_chaos(chaos)
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(scaling + coalescing + chaos gates at smoke thresholds)")


if __name__ == "__main__":
    main()
