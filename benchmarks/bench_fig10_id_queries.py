"""Fig. 10 — ID queries on cross-modal datasets are unharmed by OOD fixing.

Paper: an index refined by NGFix* with OOD (text) historical queries still
performs well on ID (image-to-image) queries: the extra edges sit where OOD
queries live and do not disturb in-distribution search.
"""

import pytest

from repro.evalx import evaluate_index

from workbench import K, get_dataset, get_fixed, get_hnsw, get_id_gt, record, search_op

NAMES = ("text2image-sim", "laion-sim")


@pytest.mark.parametrize("name", NAMES)
def test_fig10_id_queries_unaffected(benchmark, name):
    ds = get_dataset(name)
    gt_id = get_id_gt(name)
    rows = []
    deltas = []
    for ef in (K, 2 * K, 4 * K):
        before = evaluate_index(get_hnsw(name), ds.id_queries, gt_id, K, ef)
        after = evaluate_index(get_fixed(name), ds.id_queries, gt_id, K, ef)
        deltas.append(after.recall - before.recall)
        rows.append((ef, round(before.recall, 4), round(after.recall, 4),
                     round(before.ndc_per_query, 1), round(after.ndc_per_query, 1)))
    record(
        f"fig10_{name}", f"ID queries before/after OOD fixing ({name})",
        ["ef", "HNSW recall", "NGFix* recall", "HNSW NDC", "NGFix* NDC"],
        rows,
        notes="paper Fig.10: fixing with OOD queries does not hurt ID queries",
    )
    assert min(deltas) > -0.03, f"ID recall regressed on {name}: {deltas}"
    benchmark(search_op(get_fixed(name), name))
