"""Fig. 8 companion — the k=1 regime.

Paper (Sec. 6.2): "For the case of [k=1], HNSW-NGFix* also achieves better
search performance compared to other graph indexes."  The second fixing
round with a small k exists for exactly this retrieval size (Sec. 6.1).
"""

from repro.evalx import compute_ground_truth, ndc_at_recall, sweep

from workbench import (
    EFS,
    K,
    get_dataset,
    get_fixed,
    get_hnsw,
    get_roargraph,
    record,
    search_op,
)

NAME = "laion-sim"
TARGET = 0.95


def test_fig08_k1_regime(benchmark):
    ds = get_dataset(NAME)
    gt1 = compute_ground_truth(ds.base, ds.test_queries, 1, ds.metric)
    # the two-round fixer covers both large and small k (paper Sec. 6.1)
    arms = {
        "HNSW-NGFix* (rounds 10,5)": get_fixed(NAME, rounds=(K, K // 2)),
        "RoarGraph": get_roargraph(NAME),
        "HNSW": get_hnsw(NAME),
    }
    efs = [max(e // 2, 1) for e in EFS]
    rows = []
    ndc = {}
    for label, index in arms.items():
        points = sweep(index, ds.test_queries, gt1, 1, efs)
        ndc[label] = ndc_at_recall(points, TARGET)
        recall_small = points[0].recall
        rows.append((label, round(ndc[label], 1) if ndc[label] else None,
                     round(recall_small, 4)))
    record(
        "fig08_k1", f"k=1 regime ({NAME}, NDC at recall@1={TARGET})",
        ["index", f"NDC@{TARGET}", f"recall@1 (ef={efs[0]})"],
        rows,
        notes="paper Sec 6.2: NGFix* also wins at k=1; the small-k fixing "
              "round targets this regime",
    )
    fix = ndc["HNSW-NGFix* (rounds 10,5)"]
    assert fix is not None
    for rival in ("RoarGraph", "HNSW"):
        if ndc[rival] is not None:
            assert fix <= 1.1 * ndc[rival]
    benchmark(search_op(arms["HNSW-NGFix* (rounds 10,5)"], NAME, ef=K, k=1))
