"""Fig. 19 — deletion maintenance: lazy vs NGFix-repair vs full rebuild.

Paper (Text-to-Image, 20% deleted): lazy deletion degrades search notably
(dead points stretch every search path); physically removing points and
repairing each deleted neighborhood with NGFix is nearly identical to full
reconstruction at ~7% of its cost.  The right panel repeats the exercise on
an NSG index, where NGFix repair can even beat the rebuilt NSG.

Comparison runs on the work axis (NDC needed for a target recall): the
repaired graph is sparser than the original, so fixed-ef recall comparisons
conflate beam size with work done.
"""

import numpy as np

from repro.core import FixConfig, IndexMaintainer, NGFixer
from repro.distances import Metric, pairwise_distances
from repro.evalx import compute_ground_truth, ndc_at_recall, sweep
from repro.evalx.ground_truth import GroundTruth
from repro.graphs import HNSW, NSG

from workbench import (
    EFS,
    FIX_PARAMS,
    HNSW_PARAMS,
    NSG_PARAMS,
    K,
    get_dataset,
    record,
    search_op,
    timed,
)

NAME = "text2image-sim"
DELETE_FRACTION = 0.2
TARGET = 0.95


def _alive_gt(ds, deleted, k):
    """Exact ground truth over the surviving corpus (original ids)."""
    alive = np.ones(ds.n, dtype=bool)
    alive[list(deleted)] = False
    d = pairwise_distances(ds.test_queries, ds.base, ds.metric)
    d[:, ~alive] = np.inf
    ids = np.argsort(d, axis=1, kind="stable")[:, :k]
    return GroundTruth(ids, np.take_along_axis(d, ids, 1),
                       Metric.parse(ds.metric), k)


def _victims(ds, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(ds.n, size=int(DELETE_FRACTION * ds.n),
                      replace=False).tolist()


def _fixed_hnsw(ds):
    base = HNSW(ds.base, ds.metric, **HNSW_PARAMS)
    fixer = NGFixer(base, FixConfig(**FIX_PARAMS))
    fixer.fit(ds.train_queries)
    return fixer


def test_fig19_deletion_on_fixed_hnsw(benchmark):
    ds = get_dataset(NAME)
    victims = _victims(ds)
    gt = _alive_gt(ds, victims, K)
    rows = []
    ndc = {}
    times = {}

    # Lazy deletion: tombstones only.
    lazy = _fixed_hnsw(ds)
    m_lazy = IndexMaintainer(lazy, ds.train_queries, compact_threshold=1.0)
    times["Lazy"], _ = timed(lambda: m_lazy.delete(victims))
    ndc["Lazy"] = ndc_at_recall(sweep(lazy, ds.test_queries, gt, K, EFS), TARGET)
    rows.append(("Lazy deletion", round(ndc["Lazy"], 1) if ndc["Lazy"] else None,
                 round(times["Lazy"], 3)))

    # NGFix repair: physical removal + neighborhood repair.
    repaired = _fixed_hnsw(ds)
    m_rep = IndexMaintainer(repaired, ds.train_queries, compact_threshold=1.0,
                            seed=0)
    m_rep.delete(victims)
    times["Repair"], _ = timed(lambda: m_rep.compact(repair=True))
    ndc["Repair"] = ndc_at_recall(
        sweep(repaired, ds.test_queries, gt, K, EFS), TARGET)
    rows.append(("Delete + NGFix repair",
                 round(ndc["Repair"], 1) if ndc["Repair"] else None,
                 round(times["Repair"], 3)))

    # Full rebuild on the surviving corpus.
    alive_ids = np.setdiff1d(np.arange(ds.n), np.array(victims))

    def rebuild():
        base = HNSW(ds.base[alive_ids], ds.metric, **HNSW_PARAMS)
        fixer = NGFixer(base, FixConfig(**FIX_PARAMS))
        fixer.fit(ds.train_queries)
        return fixer
    times["Rebuild"], rebuilt = timed(rebuild)
    gt_rebuilt = compute_ground_truth(rebuilt.dc.data, ds.test_queries, K,
                                      ds.metric)
    ndc["Rebuild"] = ndc_at_recall(
        sweep(rebuilt, ds.test_queries, gt_rebuilt, K, EFS), TARGET)
    rows.append(("Full rebuild",
                 round(ndc["Rebuild"], 1) if ndc["Rebuild"] else None,
                 round(times["Rebuild"], 3)))

    record(
        "fig19_hnsw", f"deletion of {int(DELETE_FRACTION*100)}% points "
        f"({NAME}, HNSW-NGFix*, NDC at recall@{K}={TARGET})",
        ["method", "NDC/query", "maintenance seconds"],
        rows,
        notes="paper Fig.19: repair ~= full rebuild at a fraction of the "
              "time; lazy deletion degrades search work",
    )
    assert all(v is not None for v in ndc.values())
    assert ndc["Repair"] <= 1.15 * ndc["Rebuild"], "repair ~= rebuild quality"
    assert ndc["Repair"] < ndc["Lazy"], "repair beats lazy deletion"
    assert times["Repair"] < times["Rebuild"], "repair much cheaper than rebuild"
    benchmark(search_op(repaired, NAME))


def test_fig19_deletion_on_nsg(benchmark):
    """Right panel: the repair generalizes to other graph indexes (NSG)."""
    ds = get_dataset(NAME)
    victims = _victims(ds, seed=1)
    gt = _alive_gt(ds, victims, K)
    rows = []

    nsg = NSG(ds.base, ds.metric, **NSG_PARAMS)
    fixer = NGFixer(nsg, FixConfig(**dict(FIX_PARAMS, rfix=False)))
    maintainer = IndexMaintainer(fixer, ds.train_queries, compact_threshold=1.0,
                                 seed=0)
    maintainer.delete(victims)
    t_rep, _ = timed(lambda: maintainer.compact(repair=True))
    ndc_rep = ndc_at_recall(sweep(fixer, ds.test_queries, gt, K, EFS), TARGET)
    rows.append(("NSG delete + NGFix repair",
                 round(ndc_rep, 1) if ndc_rep else None, round(t_rep, 3)))

    alive_ids = np.setdiff1d(np.arange(ds.n), np.array(victims))
    t_full, nsg_rebuilt = timed(lambda: NSG(ds.base[alive_ids], ds.metric,
                                            **NSG_PARAMS))
    gt_rebuilt = compute_ground_truth(nsg_rebuilt.dc.data, ds.test_queries, K,
                                      ds.metric)
    ndc_full = ndc_at_recall(
        sweep(nsg_rebuilt, ds.test_queries, gt_rebuilt, K, EFS), TARGET)
    rows.append(("NSG full rebuild",
                 round(ndc_full, 1) if ndc_full else None, round(t_full, 3)))

    record(
        "fig19_nsg", f"deletion repair on NSG ({NAME}, NDC at "
        f"recall@{K}={TARGET})",
        ["method", "NDC/query", "seconds"],
        rows,
        notes="paper Fig.19 right: repaired NSG can even beat a rebuilt NSG "
              "(NGFix links better edges than NSG's own)",
    )
    assert ndc_rep is not None and ndc_full is not None
    assert ndc_rep <= 1.2 * ndc_full
    assert t_rep < t_full
    benchmark(search_op(fixer, NAME))
