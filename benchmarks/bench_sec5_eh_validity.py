"""Sec. 5.2 — validity of Escape Hardness as a query-hardness measure.

Paper claim: "Escape Hardness is highly correlated with the actual query
accuracy", and unlike single-score measures (Steiner-hardness et al.) it is
fine-grained enough to *guide construction*.  This bench quantifies the
first half: rank-correlation of per-query recall with four hardness
measures — query-to-base distance, ε-crowding, measured search effort
(a Steiner-hardness-style estimate), and EH.
"""

from repro.core.hardness_baselines import hardness_correlations

from workbench import K, get_dataset, get_gt, get_hnsw, record, search_op

NAME = "laion-sim"


def test_sec5_eh_validity(benchmark):
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)
    corr = hardness_correlations(index, ds.base, ds.test_queries,
                                 get_gt(NAME, 3 * K), k=K, ef=int(1.5 * K))
    rows = [(name, round(value, 3)) for name, value in
            sorted(corr.items(), key=lambda kv: kv[1])]
    record(
        "sec5_eh_validity",
        f"rank correlation of hardness measures with recall@{K} ({NAME})",
        ["measure", "rank-corr with recall"],
        rows,
        notes="paper Sec 5.2: EH tracks actual accuracy; more negative = "
              "better hardness measure",
    )
    assert corr["escape_hardness"] < -0.4
    # EH is at least as predictive as the naive proxies.
    assert corr["escape_hardness"] <= corr["distance"] + 0.05
    assert corr["escape_hardness"] <= corr["epsilon"] + 0.05
    benchmark(search_op(index, NAME))
