"""Fig. 20 — Gaussian query augmentation for history-poor workloads.

Paper (WebVid, MainSearch): with real historical queries equal to only p% of
the base size, synthesizing q/p noisy copies per real query (sigma = 0.3)
and fixing with the augmented set beats fixing with the sparse originals
alone — the cold-start mitigation of Sec. 7.
"""

import pytest

from repro.core import FixConfig, NGFixer, augment_queries
from repro.evalx import ndc_at_recall

from workbench import (
    FIX_PARAMS,
    K,
    get_dataset,
    get_hnsw,
    record,
    search_op,
    sweep_index,
)

NAMES = ("webvid-sim", "mainsearch-sim")
SPARSE_FRACTION = 0.1  # pretend only 10% of the history exists
PER_QUERY = 8
SIGMA = 0.3
TARGET = 0.95


@pytest.mark.parametrize("name", NAMES)
def test_fig20_augmentation(benchmark, name):
    ds = get_dataset(name)
    sparse = ds.train_queries[: int(SPARSE_FRACTION * len(ds.train_queries))]
    rows = []
    ndc = {}
    arms = {
        "sparse history": sparse,
        f"sparse + {PER_QUERY}x augmented": augment_queries(
            sparse, per_query=PER_QUERY, sigma=SIGMA, normalize=True, seed=0),
        "full history (reference)": ds.train_queries,
    }
    keep = {}
    for label, history in arms.items():
        fixer = NGFixer(get_hnsw(name).clone(), FixConfig(**FIX_PARAMS))
        fixer.fit(history)
        points = sweep_index(fixer, name)
        ndc[label] = ndc_at_recall(points, TARGET)
        keep[label] = fixer
        rows.append((label, len(history),
                     round(ndc[label], 1) if ndc[label] else None,
                     fixer.adjacency.n_extra_edges()))
    record(
        f"fig20_{name}", f"query augmentation with sparse history ({name}, "
        f"NDC at recall@{K}={TARGET}, sigma={SIGMA})",
        ["history", "n-queries", "NDC/query", "extra edges"],
        rows,
        notes="paper Fig.20: augmentation recovers much of the full-history "
              "quality from few real queries",
    )
    sparse_ndc = ndc["sparse history"]
    aug_ndc = ndc[f"sparse + {PER_QUERY}x augmented"]
    assert aug_ndc is not None
    if sparse_ndc is not None:
        assert aug_ndc <= 1.02 * sparse_ndc, "augmentation must not hurt"
    benchmark(search_op(keep[f"sparse + {PER_QUERY}x augmented"], name))
