"""Fig. 21 — NGFix+: extending the guarantee to a ball around each query.

Paper (WebVid): applying NGFix to random perturbations within delta of each
historical query (NGFix+) outperforms plain NGFix on test queries, but costs
~19x the fixing time; the trade-off motivates future work on cheaper ball
guarantees.
"""

import numpy as np

from repro.core import FixConfig, NGFixer, ngfix_plus_query
from repro.distances import pairwise_distances
from repro.evalx import ndc_at_recall

from workbench import (
    FIX_PARAMS,
    K,
    get_dataset,
    get_hnsw,
    record,
    search_op,
    sweep_index,
    timed,
)

NAME = "webvid-sim"
N_SAMPLES = 8
TARGET = 0.95


def test_fig21_ngfix_plus(benchmark):
    ds = get_dataset(NAME)
    # Use a modest history slice so the +N_SAMPLES perturbations stay cheap.
    history = ds.train_queries[:60]
    # delta: median distance from test queries to their nearest historical
    # query — the radius that should cover most unseen queries.
    delta = float(np.median(
        pairwise_distances(ds.test_queries, history, ds.metric).min(axis=1)))
    delta = max(delta, 1e-3)
    # perturb_within_ball works in Euclidean space; convert the comparison
    # distance (squared L2, or 1-cos on the unit sphere) to a radius.
    if ds.metric.value == "l2":
        euclid_delta = float(np.sqrt(delta))
    else:
        euclid_delta = float(np.sqrt(2.0 * delta))  # unit-sphere chord length

    plain = NGFixer(get_hnsw(NAME).clone(), FixConfig(**FIX_PARAMS))
    t_plain, _ = timed(lambda: plain.fit(history))
    ndc_plain = ndc_at_recall(sweep_index(plain, NAME), TARGET)

    plus = NGFixer(get_hnsw(NAME).clone(), FixConfig(**FIX_PARAMS))
    def fit_plus():
        plus.fit(history)
        for i, query in enumerate(history):
            ngfix_plus_query(plus, query, delta=euclid_delta,
                             n_samples=N_SAMPLES, seed=i)
    t_plus, _ = timed(fit_plus)
    ndc_plus = ndc_at_recall(sweep_index(plus, NAME), TARGET)

    rows = [
        ("NGFix", round(ndc_plain, 1) if ndc_plain else None,
         round(t_plain, 3), plain.adjacency.n_extra_edges()),
        (f"NGFix+ ({N_SAMPLES} perturbations)",
         round(ndc_plus, 1) if ndc_plus else None,
         round(t_plus, 3), plus.adjacency.n_extra_edges()),
    ]
    record(
        "fig21", f"NGFix+ vs NGFix ({NAME}, NDC at recall@{K}={TARGET}, "
        f"delta from median test-to-history distance)",
        ["variant", "NDC/query", "fix seconds", "extra edges"],
        rows,
        notes="paper Fig.21: NGFix+ improves accuracy at a large multiple of "
              "the fixing cost",
    )
    assert ndc_plus is not None
    if ndc_plain is not None:
        assert ndc_plus <= 1.05 * ndc_plain, "NGFix+ should not be worse"
    # The cost multiplier is the paper's point: ~(1 + N_SAMPLES)x here.
    assert t_plus > 2.0 * t_plain
    benchmark(search_op(plus, NAME))
