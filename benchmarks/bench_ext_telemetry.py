"""Extension — telemetry overhead gate for the observability layer.

The instrumentation contract (src/repro/obs/): metric updates happen once
per search / engine block / repair — never per hop — and the disabled path
is a single attribute check.  This benchmark enforces the measurable half
of that contract on the throughput-optimal path:

- **Enabled overhead ≤ 2%**: batched QPS over ``evaluate_index`` with the
  registry enabled must stay at or above ``MIN_QPS_RATIO`` (0.98) of the
  disabled arm's, at bit-identical recall.  Arms are interleaved and the
  best-of-``repeats`` QPS per arm is compared, so one scheduler hiccup
  cannot fail the gate.
- **Telemetry actually collects**: the enabled arm must leave non-zero
  batch/eval counters behind — a ratio of 1.0 from dead instrumentation
  would be vacuous.

Results land in ``BENCH_telemetry.json`` at the repo root.  Running the
file directly performs the CI telemetry-overhead smoke: same hard ratio
assertion at whatever ``REPRO_BENCH_SCALE`` is set, no JSON.
"""

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import K, get_dataset, get_fixed, get_gt, record
from repro import obs
from repro.evalx import evaluate_index

NAME = "laion-sim"
EF = 45
BATCH_SIZE = 64
MIN_QPS_RATIO = 0.98

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _run_arm(index, queries, gt, enabled: bool):
    if enabled:
        obs.enable()
    else:
        obs.disable()
    try:
        return evaluate_index(index, queries, gt, k=K, ef=EF,
                              batch_size=BATCH_SIZE)
    finally:
        obs.disable()


def run_overhead(repeats: int = 7, tile: int = 4):
    ds = get_dataset(NAME)
    gt = get_gt(NAME, K)
    index = get_fixed(NAME)
    queries = ds.test_queries
    if tile > 1:
        # Tile the query set so each arm runs long enough (hundreds of ms)
        # that scheduler noise cannot swamp a 2% effect.
        tiled = np.tile(np.arange(len(queries)), tile)
        queries, gt = queries[tiled], gt.take(tiled)

    obs.reset()
    _run_arm(index, queries, gt, enabled=False)  # warm caches/engine

    best = {False: 0.0, True: 0.0}
    recalls = {False: None, True: None}
    for _ in range(repeats):
        # Interleave the arms so drift (thermal, page cache, GC) hits both.
        for enabled in (False, True):
            point = _run_arm(index, queries, gt, enabled)
            best[enabled] = max(best[enabled], point.qps)
            recalls[enabled] = point.recall

    # The enabled arm must have actually recorded something.
    snap = obs.OBS.snapshot()
    assert snap["batch_queries"] > 0, "enabled arm recorded no batch metrics"
    assert snap["eval_queries"] > 0, "enabled arm recorded no eval metrics"

    assert recalls[True] == recalls[False], (
        f"telemetry changed results: recall {recalls[True]} (enabled) "
        f"vs {recalls[False]} (disabled)")

    ratio = best[True] / best[False]
    return {
        "n_queries": int(len(queries)), "ef": EF, "batch_size": BATCH_SIZE,
        "repeats": repeats, "tile": tile,
        "disabled_qps": round(best[False], 1),
        "enabled_qps": round(best[True], 1),
        "qps_ratio": round(ratio, 4),
        "recall": round(float(recalls[True]), 4),
        "metrics_recorded": int(snap["batch_queries"]),
    }


def test_ext_telemetry(benchmark):
    results = run_overhead(repeats=7, tile=4)
    record(
        "ext_telemetry",
        f"telemetry overhead on the batched path ({NAME}, ef={EF}, "
        f"batch={BATCH_SIZE})",
        ["arm", "qps", "recall"],
        [("telemetry disabled", results["disabled_qps"], results["recall"]),
         ("telemetry enabled", results["enabled_qps"], results["recall"])],
        notes=f"qps ratio {results['qps_ratio']} (gate >={MIN_QPS_RATIO}); "
              f"best-of-{results['repeats']} interleaved arms, query set "
              f"tiled x{results['tile']}; JSON copy at BENCH_telemetry.json",
    )
    JSON_PATH.write_text(json.dumps(
        {"dataset": NAME, "k": K, "telemetry_overhead": results},
        indent=2) + "\n")
    assert results["qps_ratio"] >= MIN_QPS_RATIO, (
        f"telemetry overhead too high: enabled/disabled QPS ratio "
        f"{results['qps_ratio']} below {MIN_QPS_RATIO}")

    ds = get_dataset(NAME)
    index = get_fixed(NAME)
    gt = get_gt(NAME, K)
    obs.enable()
    try:
        benchmark(lambda: evaluate_index(index, ds.test_queries, gt, k=K,
                                         ef=EF, batch_size=BATCH_SIZE))
    finally:
        obs.disable()


def main():
    """CI smoke: the same hard overhead gate at reduced scale."""
    start = time.perf_counter()
    results = run_overhead(repeats=5, tile=4)
    print(f"telemetry overhead: {results}")
    assert results["qps_ratio"] >= MIN_QPS_RATIO, (
        f"telemetry overhead too high: enabled/disabled QPS ratio "
        f"{results['qps_ratio']} below {MIN_QPS_RATIO}")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          f"(qps ratio {results['qps_ratio']} >= {MIN_QPS_RATIO})")


if __name__ == "__main__":
    main()
