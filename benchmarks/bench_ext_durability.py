"""Extension — WAL overhead under churn, plus a crash-recovery proof.

Two arms of the *same* 90/10 search-mutation interleave
(:func:`repro.evalx.runner.interleaved_workload`), differing only in
whether the store journals to a write-ahead log:

- **wal-off**: the epoch serving layer as benchmarked in
  ``bench_ext_serving_churn.py``.
- **wal-on**: every insert/delete journaled (CRC-framed, fsync batched
  every ``SYNC_EVERY`` records) before the call returns.

Contract: WAL-on effective QPS must stay at least ``TARGET_WAL_RATIO`` of
the WAL-off arm at equal recall — durability may not cost more than 10% of
churn throughput.  After the measured run, the WAL-on store's directory is
recovered from scratch and the report must be consistent with every vector
accounted for (the crash-recovery proof at benchmark scale; the chaos
*kill* tests live in tests/test_robustness.py).

Results land in ``BENCH_durability.json`` at the repo root.  Running the
file directly performs a fast smoke pass (recovery consistency asserted,
QPS ratio informational) — this is the CI durability smoke job.
"""

import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import K, get_dataset, get_gt, record
from repro import VectorStore
from repro.durability import recover
from repro.evalx import interleaved_workload

NAME = "laion-sim"
EF = 45
BATCH_SIZE = 64
MUTATION_FRACTION = 0.1
MERGE_EVERY = 150
SYNC_EVERY = 8
TARGET_WAL_RATIO = 0.90

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def build_store(wal_dir=None):
    ds = get_dataset(NAME)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=3,
                        merge_every=MERGE_EVERY,
                        wal_dir=wal_dir, sync_every=SYNC_EVERY)
    store.add(ds.base)
    store.build()
    return store


def _churn_arm(store, queries, gt, repeats):
    if repeats > 1:
        tiled = np.tile(np.arange(len(queries)), repeats)
        queries, gt = queries[tiled], gt.take(tiled)
    store.search_batch(queries[:BATCH_SIZE], K, EF,
                       batch_size=BATCH_SIZE)  # warm
    return interleaved_workload(
        store, queries, gt, K, EF, batch_size=BATCH_SIZE,
        mutation_fraction=MUTATION_FRACTION, seed=3)


def run_durability(n_queries=None, repeats=1):
    ds = get_dataset(NAME)
    gt = get_gt(NAME, K)
    queries = ds.test_queries
    if n_queries is not None:
        n_queries = min(n_queries, len(queries))
        queries, gt = queries[:n_queries], gt.take(np.arange(n_queries))

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-wal-"))
    try:
        off = _churn_arm(build_store(), queries, gt, repeats)

        wal_dir = tmp / "wal"
        store_on = build_store(wal_dir=wal_dir)
        on = _churn_arm(store_on, queries, gt, repeats)
        wal_stats = store_on.wal.stats()
        checkpoint_s = time.perf_counter()
        store_on.checkpoint()
        checkpoint_s = time.perf_counter() - checkpoint_s
        n_expected = store_on._fixer.dc.size
        store_on.close()

        # Crash-recovery proof: a cold recover of the journaled history
        # reconstructs the store consistently with every vector present.
        t0 = time.perf_counter()
        recovered, report = recover(wal_dir)
        recovery_s = time.perf_counter() - t0
        assert report.consistent, report.errors
        assert recovered._fixer.dc.size == n_expected, (
            recovered._fixer.dc.size, n_expected)
        sample = queries[:BATCH_SIZE]
        results = recovered.search_batch(sample, K, EF,
                                         batch_size=BATCH_SIZE)
        assert all(len(r.ids) == K for r in results)
        recovered.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # Recall must be equal across arms (identical workloads; the WAL is
    # off the read path entirely) before the QPS ratio means anything.
    assert abs(on.recall - off.recall) <= 0.01, (on.recall, off.recall)

    return {
        "n_queries": int(off.n_queries),
        "ef": EF, "batch_size": BATCH_SIZE,
        "mutation_fraction": MUTATION_FRACTION,
        "sync_every": SYNC_EVERY,
        "wal_off_qps": round(off.qps, 1),
        "wal_off_recall": round(off.recall, 4),
        "wal_on_qps": round(on.qps, 1),
        "wal_on_recall": round(on.recall, 4),
        "wal_qps_ratio": round(on.qps / off.qps, 3),
        "mutations": on.n_inserts + on.n_deletes,
        "wal_records": wal_stats["records"],
        "wal_fsyncs": wal_stats["fsyncs"],
        "checkpoint_seconds": round(checkpoint_s, 3),
        "recovery_seconds": round(recovery_s, 3),
        "recovery_replayed": report.replayed,
        "recovery_consistent": report.consistent,
    }


def test_ext_durability(benchmark):
    results = run_durability(repeats=5)
    record(
        "ext_durability",
        f"WAL overhead under 90/10 churn + crash recovery ({NAME}, ef={EF})",
        ["arm", "qps", "recall", "mutations", "wal records", "fsyncs"],
        [("wal-off churn", results["wal_off_qps"],
          results["wal_off_recall"], results["mutations"], "-", "-"),
         ("wal-on churn", results["wal_on_qps"], results["wal_on_recall"],
          results["mutations"], results["wal_records"],
          results["wal_fsyncs"])],
        notes=f"wal qps ratio {results['wal_qps_ratio']} (target "
              f">={TARGET_WAL_RATIO}); cold recovery in "
              f"{results['recovery_seconds']}s, consistent; "
              "JSON copy at BENCH_durability.json",
    )
    JSON_PATH.write_text(json.dumps(
        {"dataset": NAME, "k": K, "durability": results}, indent=2) + "\n")
    assert results["wal_qps_ratio"] >= TARGET_WAL_RATIO, (
        f"WAL churn QPS ratio {results['wal_qps_ratio']} "
        f"below {TARGET_WAL_RATIO}")

    store = build_store()
    queries = get_dataset(NAME).test_queries
    benchmark(lambda: store.search_batch(queries[:BATCH_SIZE], K, EF,
                                         batch_size=BATCH_SIZE))


def main():
    """CI smoke: recovery consistency asserted, QPS ratio informational."""
    start = time.perf_counter()
    results = run_durability(n_queries=120)
    print(f"durability: {results}")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(recovery consistency asserted; wal qps ratio informational)")


if __name__ == "__main__":
    main()
