"""Extension — epoch-based serving layer under a mutating workload.

One scenario, three contracts:

- **Throughput under churn**: a 90% search / 10% mutation interleave
  (delete + re-insert churn that is recall-neutral by construction, see
  :func:`repro.evalx.runner.interleaved_workload`) must sustain at least
  ``TARGET_QPS_RATIO`` of the read-only batched QPS measured by the *same*
  harness at ``mutation_fraction=0``, at equal recall.
- **Zero O(E) refreezes on the query path**: every CSR rebuild during the
  churn run must be attributable to a scheduler epoch cut; the report's
  ``query_path_freezes`` is asserted to be exactly zero.
- **Epoch consistency**: an epoch pinned before the churn run replays
  bit-identical ids *and distances* for its queries after hundreds of
  overlay writes and several merges.

Results land in ``BENCH_serving.json`` at the repo root.  Running the file
directly (``python benchmarks/bench_ext_serving_churn.py``) performs a fast
smoke pass: consistency + zero-freeze + recall-neutrality assertions at
whatever ``REPRO_BENCH_SCALE`` is set, no JSON, no QPS target — this is the
CI serving-churn smoke job.
"""

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from workbench import K, get_dataset, get_gt, record
from repro import VectorStore
from repro.evalx import interleaved_workload
from repro.graphs.search import greedy_search

NAME = "laion-sim"
EF = 45
BATCH_SIZE = 64
MUTATION_FRACTION = 0.1
OBSERVE_EVERY = 2          # online NGFix/RFix repair every 2nd batch
MERGE_EVERY = 150          # overlay ops per background epoch merge
TARGET_QPS_RATIO = 0.8
N_CONSISTENCY_QUERIES = 8

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def build_store():
    ds = get_dataset(NAME)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=3,
                        merge_every=MERGE_EVERY)
    store.add(ds.base)
    store.build()
    store.fit_history(ds.train_queries)
    return store


def pinned_results(store, pin, queries):
    view = pin.view
    return [greedy_search(store.dc, view, [pin.epoch.entry], q, k=K, ef=EF,
                          excluded=view.excluded())
            for q in queries]


def run_serving_churn(n_queries=None, repeats=1):
    ds = get_dataset(NAME)
    gt = get_gt(NAME, K)
    queries = ds.test_queries
    if n_queries is not None:
        n_queries = min(n_queries, len(queries))
        queries, gt = queries[:n_queries], gt.take(np.arange(n_queries))
    if repeats > 1:
        # Tile the query set so each arm runs enough batches for a stable
        # QPS estimate (and enough mutations to trigger merges + observes).
        tiled = np.tile(np.arange(len(queries)), repeats)
        queries, gt = queries[tiled], gt.take(tiled)

    store = build_store()
    adjacency = store._fixer.adjacency

    # Pin an epoch *before* any churn; it must replay these results
    # bit-identically at the end, after hundreds of overlay writes.
    pin = store.epochs.pin()
    consistency_queries = queries[:N_CONSISTENCY_QUERIES]
    reference = pinned_results(store, pin, consistency_queries)

    store.search_batch(queries, K, EF, batch_size=BATCH_SIZE)  # warm
    read_only = interleaved_workload(
        store, queries, gt, K, EF, batch_size=BATCH_SIZE,
        mutation_fraction=0.0, churn_ids=[0], seed=3)
    assert read_only.n_inserts == read_only.n_deletes == 0

    churn = interleaved_workload(
        store, queries, gt, K, EF, batch_size=BATCH_SIZE,
        mutation_fraction=MUTATION_FRACTION, observe_every=OBSERVE_EVERY,
        seed=3)

    # Contract 1: zero O(E) refreezes on the query path (both arms).
    assert read_only.query_path_freezes == 0, (
        f"{read_only.query_path_freezes} query-path freezes in read-only arm")
    assert churn.query_path_freezes == 0, (
        f"{churn.query_path_freezes} query-path freezes under churn")

    # Contract 2: the pre-churn pin replays bit-identically.
    replay = pinned_results(store, pin, consistency_queries)
    for ref, now in zip(reference, replay):
        np.testing.assert_array_equal(ref.ids, now.ids)
        np.testing.assert_array_equal(ref.distances, now.distances)
    pin.release()

    # Contract 3: churn is recall-neutral (the mutations avoid gt ids and
    # every delete is compensated, so any gap is uncontained graph damage).
    assert churn.recall >= read_only.recall - 0.01, (
        f"recall degraded under churn: {churn.recall:.4f} "
        f"vs {read_only.recall:.4f}")

    return {
        "n_queries": int(read_only.n_queries),
        "ef": EF, "batch_size": BATCH_SIZE,
        "mutation_fraction": MUTATION_FRACTION,
        "merge_every": MERGE_EVERY,
        "read_only_qps": round(read_only.qps, 1),
        "read_only_recall": round(read_only.recall, 4),
        "churn_qps": round(churn.qps, 1),
        "churn_recall": round(churn.recall, 4),
        "qps_ratio": round(churn.qps / read_only.qps, 3),
        "inserts": churn.n_inserts,
        "deletes": churn.n_deletes,
        "observed": churn.n_observed,
        "online_repairs": churn.repairs,
        "epoch_merges": churn.merges,
        "query_path_freezes": churn.query_path_freezes,
        "total_freezes": int(adjacency.n_freezes),
        "epoch_consistency": "bit-identical over "
                             f"{N_CONSISTENCY_QUERIES} pinned queries",
    }


def test_ext_serving_churn(benchmark):
    results = run_serving_churn(repeats=5)
    record(
        "ext_serving_churn",
        f"epoch serving under 90/10 search-mutation churn ({NAME}, ef={EF})",
        ["arm", "qps", "recall", "mutations", "merges", "repairs",
         "query-path freezes"],
        [("read-only batched", results["read_only_qps"],
          results["read_only_recall"], 0, "-", "-", 0),
         ("90/10 churn", results["churn_qps"], results["churn_recall"],
          results["inserts"] + results["deletes"], results["epoch_merges"],
          results["online_repairs"], results["query_path_freezes"])],
        notes=f"qps ratio {results['qps_ratio']} (target "
              f">={TARGET_QPS_RATIO}); pinned-epoch results bit-identical; "
              "JSON copy at BENCH_serving.json",
    )
    JSON_PATH.write_text(json.dumps(
        {"dataset": NAME, "k": K, "serving_churn": results}, indent=2) + "\n")
    assert results["qps_ratio"] >= TARGET_QPS_RATIO, (
        f"churn QPS ratio {results['qps_ratio']} below {TARGET_QPS_RATIO}")

    store = build_store()
    queries = get_dataset(NAME).test_queries
    benchmark(lambda: store.search_batch(queries[:BATCH_SIZE], K, EF,
                                         batch_size=BATCH_SIZE))


def main():
    """CI smoke: consistency contracts only, no JSON, no QPS target."""
    start = time.perf_counter()
    results = run_serving_churn(n_queries=120)
    print(f"serving churn: {results}")
    print(f"smoke pass in {time.perf_counter() - start:.1f}s "
          "(consistency + zero-freeze asserted; qps ratio informational)")


if __name__ == "__main__":
    main()
