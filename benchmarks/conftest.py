"""Benchmark-run plumbing: re-emit recorded paper tables after the run.

pytest captures stdout of passing tests; the terminal-summary hook below
prints every table written to ``benchmarks/results/`` during this run, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` preserves the
paper-vs-measured evidence alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_RUN_START = time.time()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS_DIR.exists():
        return
    fresh = [p for p in sorted(RESULTS_DIR.glob("*.txt"))
             if p.stat().st_mtime >= _RUN_START - 1]
    if not fresh:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("REPRODUCED PAPER TABLES AND FIGURES")
    terminalreporter.write_line("=" * 72)
    for path in fresh:
        terminalreporter.write_line("")
        terminalreporter.write_line(path.read_text().rstrip())
