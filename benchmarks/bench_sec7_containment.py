"""Sec. 7 / Appendix D — NN-set containment between nearby queries.

The paper's proposed guarantee extension rests on an empirical fact: if a
test query q' lies within delta of a historical query q, then q's top-cK
neighbor set contains most of q''s top-k set — so fixing q's neighborhood
with K_max = cK also serves q'.  The paper measures (WebVid): with c = 2,
containment holds for delta up to ~0.03; with c = 3, up to ~0.114.

Reproduced: sample perturbed copies of historical queries at increasing
delta and measure mean containment |N_k(q') ∩ N_cK(q)| / k for several c.
"""

import numpy as np

from repro.core.ngfix_plus import perturb_within_ball
from repro.evalx import compute_ground_truth

from workbench import K, get_dataset, record, search_op, get_hnsw

NAME = "webvid-sim"
CS = (1, 2, 3)
DELTAS = (0.02, 0.05, 0.1, 0.2, 0.4)
N_QUERIES = 40
PER_DELTA = 5


def test_sec7_nn_set_containment(benchmark):
    ds = get_dataset(NAME)
    base_queries = ds.train_queries[:N_QUERIES]
    gt_wide = compute_ground_truth(ds.base, base_queries, max(CS) * K,
                                   ds.metric)
    rows = []
    table = {}
    for delta in DELTAS:
        perturbed = perturb_within_ball(base_queries, delta, PER_DELTA, seed=1)
        perturbed /= np.maximum(
            np.linalg.norm(perturbed, axis=1, keepdims=True), 1e-12)
        gt_p = compute_ground_truth(ds.base, perturbed, K, ds.metric)
        row = [delta]
        for c in CS:
            containments = []
            for i in range(perturbed.shape[0]):
                owner = i // PER_DELTA
                wide = set(gt_wide.ids[owner][: c * K].tolist())
                near = set(gt_p.ids[i].tolist())
                containments.append(len(near & wide) / K)
            value = float(np.mean(containments))
            table[(delta, c)] = value
            row.append(round(value, 3))
        rows.append(tuple(row))
    record(
        "sec7_containment",
        f"mean |N_k(q') ∩ N_cK(q)| / k for perturbation radius delta ({NAME})",
        ["delta", *[f"c={c}" for c in CS]],
        rows,
        notes="paper Sec.7/App.D: larger c tolerates larger delta; "
              "containment decays with distance",
    )
    # Shape: containment decays with delta and grows with c.
    for c in CS:
        assert table[(DELTAS[0], c)] >= table[(DELTAS[-1], c)]
    for delta in DELTAS:
        assert table[(delta, 3)] >= table[(delta, 1)] - 1e-9
    # Small perturbations are essentially covered at c = 3.
    assert table[(DELTAS[0], 3)] > 0.9
    benchmark(search_op(get_hnsw(NAME), NAME))
