"""Fig. 3/4 — QNG connectivity vs. query accuracy.

Paper: (a) per-query recall strongly correlates with the average number of
points reachable inside the query's k-Neighboring Graph; (b) OOD queries'
QNGs are weaker than ID queries' on average, but both populations are mixed
(~30% of OOD QNGs are strong, ~10% of ID QNGs are weak).
"""

import numpy as np

from repro.core.analysis import qng_recall_correlation
from repro.core.qng import build_qng, average_reachable

from workbench import K, get_dataset, get_gt, get_hnsw, get_id_gt, record, search_op

NAME = "laion-sim"


def test_fig04a_connectivity_recall_correlation(benchmark):
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)
    out = qng_recall_correlation(index, ds.test_queries, get_gt(NAME),
                                 k=K, ef=int(1.5 * K))
    # bucket by reachability fraction, report mean recall per bucket
    frac = out["avg_reachable"] / K
    rows = []
    for lo, hi in [(0.0, 0.4), (0.4, 0.7), (0.7, 0.9), (0.9, 1.01)]:
        mask = (frac >= lo) & (frac < hi)
        if mask.any():
            rows.append((f"[{lo:.1f},{hi:.1f})", int(mask.sum()),
                         round(float(out["recalls"][mask].mean()), 3)))
    record(
        "fig04a", f"QNG avg-reachable fraction vs recall@{K} ({NAME}), "
        f"pearson r = {out['pearson_r']:.3f}",
        ["reachable-frac", "n-queries", "mean-recall"],
        rows,
        notes="paper Fig.4(a): strong positive correlation",
    )
    assert out["pearson_r"] > 0.3
    means = [r[2] for r in rows]
    assert means[-1] > means[0]
    benchmark(search_op(index, NAME))


def test_fig04b_ood_vs_id_connectivity(benchmark):
    ds = get_dataset(NAME)
    index = get_hnsw(NAME)

    def reach_fracs(gt):
        return np.array([
            average_reachable(build_qng(index.adjacency.neighbors,
                                        gt.ids[i][:K])) / K
            for i in range(gt.n_queries)
        ])

    ood = reach_fracs(get_gt(NAME))
    ident = reach_fracs(get_id_gt(NAME))
    rows = [
        ("OOD", round(float(ood.mean()), 3), round(float((ood > 0.9).mean()), 3),
         round(float((ood < 0.4).mean()), 3)),
        ("ID", round(float(ident.mean()), 3), round(float((ident > 0.9).mean()), 3),
         round(float((ident < 0.4).mean()), 3)),
    ]
    record(
        "fig04b", f"QNG connectivity, OOD vs ID queries ({NAME})",
        ["workload", "mean reach-frac", "frac strong(>0.9)", "frac weak(<0.4)"],
        rows,
        notes="paper Fig.4(b): OOD weaker on average; both populations mixed",
    )
    assert ood.mean() < ident.mean()
    assert (ood > 0.9).mean() > 0.02   # some OOD QNGs are still strong
    benchmark(lambda: average_reachable(
        build_qng(index.adjacency.neighbors, get_gt(NAME).ids[0][:K])))
