"""Extension — entry-strategy ablation vs the paper's fixed-medoid choice.

DESIGN.md calls out the entry-point design decision: the paper fixes search
entry at the base medoid and relies on RFix for navigability (Sec. 5.4),
while related work (LSH-APG, HVS, HM-ANN) improves entry selection instead.
This ablation runs the fixed index under medoid, random, and k-means
centroid-router entries: on a repaired graph, smarter entries buy little —
supporting the paper's choice of fixing navigability in the graph itself.
"""

from repro.evalx import evaluate_index
from repro.graphs import CentroidsEntry, MedoidEntry, MultiEntryIndex, RandomEntry

from workbench import K, get_dataset, get_fixed, get_gt, get_hnsw, record, search_op

NAME = "laion-sim"


def test_ext_entry_strategies(benchmark):
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    ef = 3 * K
    rows = []
    recalls = {}
    for graph_label, index in (("HNSW", get_hnsw(NAME)),
                               ("HNSW-NGFix*", get_fixed(NAME))):
        base_index = index.index if hasattr(index, "index") else index
        strategies = {
            "medoid (paper)": MedoidEntry(base_index.dc),
            "random x3": RandomEntry(3, seed=0),
            "centroid router": CentroidsEntry(base_index.dc, n_centroids=16,
                                              n_probe=2, seed=0),
        }
        for label, strategy in strategies.items():
            wrapped = MultiEntryIndex(base_index, strategy)
            point = evaluate_index(wrapped, ds.test_queries, gt, K, ef)
            recalls[(graph_label, label)] = point.recall
            rows.append((graph_label, label, round(point.recall, 4),
                         round(point.ndc_per_query, 1)))
    record(
        "ext_entry", f"entry strategies x graph repair ({NAME}, ef={ef})",
        ["graph", "entry strategy", f"recall@{K}", "NDC/query"],
        rows,
        notes="design ablation: once NGFix* repairs the graph, entry choice "
              "matters little — navigability lives in the edges, as Sec. 5.4 "
              "argues",
    )
    # On the fixed graph every strategy is within a few points of medoid.
    fixed_medoid = recalls[("HNSW-NGFix*", "medoid (paper)")]
    for label in ("random x3", "centroid router"):
        assert abs(recalls[("HNSW-NGFix*", label)] - fixed_medoid) < 0.06
    # And the fixed graph beats the unfixed one under every entry strategy.
    for label in ("medoid (paper)", "random x3", "centroid router"):
        assert (recalls[("HNSW-NGFix*", label)]
                >= recalls[("HNSW", label)] - 0.01)
    benchmark(search_op(get_fixed(NAME), NAME))
