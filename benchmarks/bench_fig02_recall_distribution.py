"""Fig. 2(b) — per-query recall distribution of HNSW on cross-modal data.

Paper: with a fixed search list size, most queries reach the query vicinity
(recall > 0) but a substantial fraction recall only part of their NNs; the
hard tail motivates NGFix.  Reproduced: recall histogram per cross-modal
dataset plus the phase-1 success rate.
"""

from repro.core.analysis import phase_reach_stats
from repro.datasets.registry import CROSS_MODAL_NAMES

from workbench import K, get_dataset, get_gt, get_hnsw, record, search_op


def test_fig02_recall_distribution(benchmark):
    ef = 2 * K
    rows = []
    for name in CROSS_MODAL_NAMES:
        ds = get_dataset(name)
        stats = phase_reach_stats(get_hnsw(name), ds.test_queries,
                                  get_gt(name), k=K, ef=ef)
        hist = stats["histogram"]
        rows.append((name, round(stats["reached_vicinity_fraction"], 3),
                     *[round(v, 3) for v in hist.values()]))
        # Paper claim: greedy search reaches the vicinity for most queries.
        assert stats["reached_vicinity_fraction"] > 0.75
        # ...but a hard tail exists: not everyone sits in the top bucket.
        assert hist["[0.90, 1.00]"] < 0.95
    record(
        "fig02", f"HNSW recall@{K} distribution (ef={ef})",
        ["dataset", "reach-vicinity", "[0,.25)", "[.25,.5)", "[.5,.75)",
         "[.75,.9)", "[.9,1]"],
        rows,
        notes="paper Fig.2(b): most searches enter phase 2; hard tail remains",
    )
    benchmark(search_op(get_hnsw(CROSS_MODAL_NAMES[0]), CROSS_MODAL_NAMES[0],
                        ef=ef))
