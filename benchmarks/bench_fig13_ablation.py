"""Fig. 13 — ablations: preprocessing mode, EH-vs-hardness correlation, and
defect-fixing strategies.

(a) exact-NN vs approximate-NN preprocessing produce near-identical indexes;
(b) NGFix adds many edges exactly for the queries whose base-graph recall is
    poor (EH finds the hard queries);
(c) NGFix beats reconstruct-RNG (fewer edges, equal/better quality) and both
    beat random connecting.
"""

import numpy as np

from repro.core import FixConfig, NGFixer
from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import random_connect_fix, rng_overlay_fix
from repro.evalx import (
    compute_ground_truth,
    evaluate_index,
    ndc_at_recall,
    qps_at_recall,
    recall_per_query,
)

from workbench import (
    K,
    FIX_PARAMS,
    get_dataset,
    get_gt,
    get_hnsw,
    record,
    search_op,
    sweep_index,
)

NAME = "laion-sim"


def test_fig13a_exact_vs_approx_preprocessing(benchmark):
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    rows = []
    recalls = {}
    for mode, label in (("exact", "ExactKNN"), ("approx", "AKNN-ef120")):
        params = dict(FIX_PARAMS)
        params["preprocess"] = mode
        fixer = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
        fixer.fit(ds.train_queries)
        for ef in (2 * K, 4 * K, 7 * K):
            point = evaluate_index(fixer, ds.test_queries, gt, K, ef)
            rows.append((label, ef, round(point.recall, 4),
                         round(point.qps, 1)))
            recalls[(label, ef)] = point.recall
    record("fig13a", f"exact vs approximate NN preprocessing ({NAME})",
           ["preprocess", "ef", "recall", "QPS"], rows,
           notes="paper Fig.13(a): curves nearly identical")
    for ef in (2 * K, 4 * K, 7 * K):
        assert abs(recalls[("ExactKNN", ef)] - recalls[("AKNN-ef120", ef)]) < 0.05
    benchmark(search_op(get_hnsw(NAME), NAME))


def test_fig13b_eh_targets_hard_queries(benchmark):
    """Edges added per historical query vs that query's recall on the
    *unfixed* base graph: strong negative relationship."""
    ds = get_dataset(NAME)
    base = get_hnsw(NAME)
    gt_train = get_gt(NAME, K, queries="train")

    # recall of each historical query on the unfixed graph
    found = np.vstack([base.search(q, k=K, ef=2 * K).ids[:K]
                       for q in ds.train_queries])
    base_recalls = recall_per_query(found, gt_train.top(K).ids)

    fixer = NGFixer(base.clone(), FixConfig(**FIX_PARAMS))
    fixer.fit(ds.train_queries)
    edges = np.array([r.edges_added + r.rfix_edges for r in fixer.records],
                     dtype=float)

    rows = []
    for lo, hi in [(0.0, 0.5), (0.5, 0.8), (0.8, 0.95), (0.95, 1.01)]:
        mask = (base_recalls >= lo) & (base_recalls < hi)
        if mask.any():
            rows.append((f"[{lo},{hi})", int(mask.sum()),
                         round(float(edges[mask].mean()), 2)))
    corr = float(np.corrcoef(base_recalls, edges)[0, 1])
    record("fig13b",
           f"edges added by NGFix vs base-graph recall ({NAME}), r={corr:.3f}",
           ["base recall bucket", "n-queries", "mean edges added"], rows,
           notes="paper Fig.13(b): hard queries receive more edges")
    assert corr < -0.3
    assert rows[0][2] > rows[-1][2]
    benchmark(search_op(base, NAME))


def test_fig13c_fixing_strategies(benchmark):
    """NGFix vs reconstruct-RNG overlay vs random connecting."""
    ds = get_dataset(NAME)
    gt = get_gt(NAME)
    gt_train = compute_ground_truth(ds.base, ds.train_queries,
                                    FixConfig(**FIX_PARAMS).k_max(), ds.metric)

    arms = {}

    # NGFix (the real thing, NGFix-only for a clean comparison)
    params = dict(FIX_PARAMS)
    params["rfix"] = False
    ngfix = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
    ngfix.fit(ds.train_queries)
    arms["NGFix"] = ngfix

    # Reconstruct-RNG overlay
    overlay = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
    for i in range(len(ds.train_queries)):
        rng_overlay_fix(overlay.adjacency, overlay.dc, gt_train.ids[i][:K],
                        max_extra_degree=params["max_extra_degree"])
    arms["Reconstruct-RNG"] = overlay

    # Random connecting
    rand = NGFixer(get_hnsw(NAME).clone(), FixConfig(**params))
    for i in range(len(ds.train_queries)):
        eh = escape_hardness(rand.adjacency.neighbors, gt_train.ids[i], K)
        random_connect_fix(rand.adjacency, rand.dc, eh,
                           max_extra_degree=params["max_extra_degree"], seed=i)
    arms["Random-Connect"] = rand

    target = 0.95
    rows = []
    results = {}
    for label, fixer in arms.items():
        points = sweep_index(fixer, NAME)
        qps = qps_at_recall(points, target)
        ndc = ndc_at_recall(points, target)
        degree = fixer.adjacency.average_out_degree()
        results[label] = (qps, ndc, degree)
        rows.append((label, round(qps, 1) if qps else None,
                     round(ndc, 1) if ndc else None,
                     round(degree, 2), fixer.adjacency.n_extra_edges()))
    record("fig13c", f"defect-fixing strategies ({NAME}, at recall {target})",
           ["strategy", "QPS", "NDC/query", "avg out-degree", "extra edges"],
           rows,
           notes="paper Fig.13(c): NGFix best QPS; RNG overlay ~1.4x degree; "
                 "random worst")

    # NGFix matches or beats both ablations in work-at-recall while spending
    # the least degree budget; the RNG overlay needs clearly more edges.
    assert results["NGFix"][1] <= 1.05 * results["Reconstruct-RNG"][1]
    assert results["NGFix"][1] <= 1.05 * results["Random-Connect"][1]
    assert results["Reconstruct-RNG"][2] > 1.05 * results["NGFix"][2]
    assert results["NGFix"][2] <= results["Random-Connect"][2] + 0.5
    benchmark(search_op(ngfix, NAME))
