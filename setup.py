"""Setup shim so legacy editable installs work offline (no wheel package).

All project metadata lives in pyproject.toml; install with
``pip install -e . --no-use-pep517 --no-build-isolation`` in offline
environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
